package minic

import "fmt"

// Parser is a recursive-descent parser for MiniC.
//
// Grammar (EBNF, informally):
//
//	file     = { decl } .
//	decl     = type ident ( funcRest | varRest ) .
//	funcRest = "(" [ params ] ")" block .
//	varRest  = [ "=" expr ] ";" .
//	type     = ( "int" | "bool" | "void" ) { "*" } .
//	block    = "{" { stmt } "}" .
//	stmt     = block | ifStmt | whileStmt | returnStmt | declStmt
//	         | assignOrExprStmt .
//	assignOrExprStmt = lvalue "=" expr ";" | expr ";" .
//	expr     = orExpr .
//	orExpr   = andExpr { "||" andExpr } .
//	andExpr  = cmpExpr { "&&" cmpExpr } .
//	cmpExpr  = addExpr [ ( "=="|"!="|"<"|"<="|">"|">=" ) addExpr ] .
//	addExpr  = mulExpr { ( "+" | "-" ) mulExpr } .
//	mulExpr  = unary { ( "*" | "/" | "%" ) unary } .
//	unary    = ( "-" | "!" | "*" | "&" ) unary | primary .
//	primary  = ident [ "(" args ")" ] | int | "true" | "false" | "null"
//	         | "(" expr ")" .
type Parser struct {
	toks []Token
	pos  int
}

// NewParser returns a Parser over a pre-lexed token stream.
func NewParser(toks []Token) *Parser { return &Parser{toks: toks} }

// ParseFile lexes and parses one translation unit.
func ParseFile(name, src string) (*File, error) {
	toks, err := Lex(name, src)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	return p.File(name)
}

// ParseProgram parses a set of named translation units into one Program.
// Order of the units map is not significant; files are sorted by the caller
// when determinism matters.
func ParseProgram(units []NamedSource) (*Program, error) {
	prog := &Program{}
	for i, u := range units {
		f, err := ParseFile(u.Name, u.Src)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", u.Name, err)
		}
		for _, fn := range f.Funcs {
			fn.Unit = i
		}
		prog.Files = append(prog.Files, f)
	}
	return prog, nil
}

// NamedSource pairs a unit name with its source text.
type NamedSource struct {
	Name string
	Src  string
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	t := p.cur()
	return t, &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected %s, found %s", k, t)}
}

func (p *Parser) atType() bool {
	switch p.cur().Kind {
	case TokKwInt, TokKwBool, TokKwVoid, TokKwStruct:
		return true
	}
	return false
}

func (p *Parser) parseType() (Type, error) {
	var t Type
	switch p.cur().Kind {
	case TokKwInt:
		t = IntType
	case TokKwBool:
		t = BoolType
	case TokKwVoid:
		t = VoidType
	case TokKwStruct:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return t, err
		}
		t = StructType(name.Lit)
		for p.accept(TokStar) {
			t = t.Pointer()
		}
		return t, nil
	default:
		return t, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf("expected type, found %s", p.cur())}
	}
	p.next()
	for p.accept(TokStar) {
		t = t.Pointer()
	}
	return t, nil
}

// File parses a whole translation unit until EOF.
func (p *Parser) File(name string) (*File, error) {
	f := &File{Name: name}
	for !p.at(TokEOF) {
		// A struct type declaration: "struct Name { ... };".
		if p.at(TokKwStruct) && p.toks[p.pos+1].Kind == TokIdent && p.toks[p.pos+2].Kind == TokLBrace {
			sd, err := p.parseStructDecl()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
			continue
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if p.at(TokLParen) {
			fn, err := p.parseFuncRest(typ, nameTok)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		} else {
			vd, err := p.parseVarRest(typ, nameTok)
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, vd)
		}
	}
	return f, nil
}

// parseStructDecl parses "struct Name { type field; ... };".
func (p *Parser) parseStructDecl() (*StructDecl, error) {
	kw := p.next() // struct
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	sd := &StructDecl{Pos: kw.Pos, Name: nameTok.Lit}
	for !p.at(TokRBrace) {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, Param{Name: fn.Lit, Type: ft})
	}
	p.next() // '}'
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return sd, nil
}

func (p *Parser) parseFuncRest(ret Type, nameTok Token) (*FuncDecl, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: nameTok.Pos, Name: nameTok.Lit, Ret: ret}
	if !p.at(TokRParen) {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pn, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Name: pn.Lit, Type: pt})
			if !p.accept(TokComma) {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseVarRest(typ Type, nameTok Token) (*VarDecl, error) {
	vd := &VarDecl{Pos: nameTok.Pos, Name: nameTok.Lit, Type: typ}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, &Error{Pos: p.cur().Pos, Msg: "unexpected EOF in block"}
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume '}'
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokKwIf:
		return p.parseIf()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwFor:
		return p.parseFor()
	case TokKwReturn:
		t := p.next()
		rs := &ReturnStmt{Pos: t.Pos}
		if !p.at(TokSemi) {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = v
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return rs, nil
	}
	if p.atType() {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		vd, err := p.parseVarRest(typ, nameTok)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: vd}, nil
	}
	return p.parseAssignOrExpr()
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: t.Pos, Cond: cond, Then: then}
	if p.accept(TokKwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil
}

// parseFor desugars `for (init; cond; post) body` into
// `{ init; while (cond) { body; post; } }`. Any of the three clauses may be
// empty; an empty condition means true.
func (p *Parser) parseFor() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var init Stmt
	if !p.at(TokSemi) {
		if p.atType() {
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			vd, err := p.parseVarRest(typ, nameTok) // consumes ';'
			if err != nil {
				return nil, err
			}
			init = &DeclStmt{Decl: vd}
		} else {
			st, err := p.parseAssignOrExpr() // consumes ';'
			if err != nil {
				return nil, err
			}
			init = st
		}
	} else {
		p.next() // empty init: consume ';'
	}
	var cond Expr = &BoolLit{Pos: t.Pos, Val: true}
	if !p.at(TokSemi) {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cond = c
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	var post Stmt
	if !p.at(TokRParen) {
		// The post clause is an assignment or expression without the
		// trailing semicolon; parse the expression form manually.
		start := p.cur().Pos
		lhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokAssign) {
			if !isLvalue(lhs) {
				return nil, &Error{Pos: start, Msg: "left side of '=' is not assignable"}
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			post = &AssignStmt{Pos: start, Target: lhs, Value: rhs}
		} else {
			post = &ExprStmt{Pos: start, X: lhs}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	loopBody := &BlockStmt{Pos: t.Pos, Stmts: []Stmt{body}}
	if post != nil {
		loopBody.Stmts = append(loopBody.Stmts, post)
	}
	out := &BlockStmt{Pos: t.Pos}
	if init != nil {
		out.Stmts = append(out.Stmts, init)
	}
	out.Stmts = append(out.Stmts, &WhileStmt{Pos: t.Pos, Cond: cond, Body: loopBody})
	return out, nil
}

func (p *Parser) parseAssignOrExpr() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(TokAssign) {
		if !isLvalue(lhs) {
			return nil, &Error{Pos: start, Msg: "left side of '=' is not assignable"}
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: start, Target: lhs, Value: rhs}, nil
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: start, X: lhs}, nil
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *ArrowExpr:
		return true
	case *UnaryExpr:
		return x.Op == "*"
	}
	return false
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOrOr) {
		t := p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: t.Pos, Op: "||", X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(TokAndAnd) {
		t := p.next()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: t.Pos, Op: "&&", X: x, Y: y}
	}
	return x, nil
}

var cmpOps = map[TokKind]string{
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
}

func (p *Parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		t := p.next()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Pos: t.Pos, Op: op, X: x, Y: y}, nil
	}
	return x, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		t := p.next()
		op := "+"
		if t.Kind == TokMinus {
			op = "-"
		}
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: t.Pos, Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokStar:
			op = "*"
		case TokSlash:
			op = "/"
		case TokPercent:
			op = "%"
		default:
			return x, nil
		}
		t := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: t.Pos, Op: op, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	var op string
	switch p.cur().Kind {
	case TokMinus:
		op = "-"
	case TokBang:
		op = "!"
	case TokStar:
		op = "*"
	case TokAmp:
		op = "&"
	default:
		return p.parsePostfix()
	}
	t := p.next()
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return &UnaryExpr{Pos: t.Pos, Op: op, X: x}, nil
}

// parsePostfix parses a primary followed by "->field" chains.
func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(TokArrow) {
		t := p.next()
		f, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		x = &ArrowExpr{Pos: t.Pos, X: x, Field: f.Lit}
	}
	return x, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.next()
		if p.accept(TokLParen) {
			call := &CallExpr{Pos: t.Pos, Fun: t.Lit}
			if !p.at(TokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Lit}, nil
	case TokInt:
		p.next()
		var v int64
		for _, c := range t.Lit {
			v = v*10 + int64(c-'0')
		}
		return &IntLit{Pos: t.Pos, Val: v}, nil
	case TokKwTrue:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: true}, nil
	case TokKwFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: false}, nil
	case TokKwNull:
		p.next()
		return &NullLit{Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected expression, found %s", t)}
}
