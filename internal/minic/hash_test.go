package minic

import (
	"testing"
)

func parseOne(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseFile("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestHashFuncStable(t *testing.T) {
	src := "int f(int a) { int b = a + 1; return b; }"
	f1 := parseOne(t, src)
	f2 := parseOne(t, src)
	if HashFunc(f1.Funcs[0]) != HashFunc(f2.Funcs[0]) {
		t.Error("identical source hashed differently")
	}
}

func TestHashFuncSensitivity(t *testing.T) {
	base := parseOne(t, "int f(int a) { return a + 1; }").Funcs[0]
	variants := map[string]string{
		"literal":  "int f(int a) { return a + 2; }",
		"operator": "int f(int a) { return a - 1; }",
		"name":     "int g(int a) { return a + 1; }",
		"param":    "int f(int b) { return b + 1; }",
		"ret type": "int *f(int a) { return null; }",
		// Same text, shifted one line down: positions are part of the key.
		"position": "\nint f(int a) { return a + 1; }",
	}
	for what, src := range variants {
		v := parseOne(t, src).Funcs[0]
		if HashFunc(base) == HashFunc(v) {
			t.Errorf("%s change not reflected in hash", what)
		}
	}
}

func TestHashSource(t *testing.T) {
	if HashSource("a.mc", "x") == HashSource("a.mc", "y") {
		t.Error("content change not reflected")
	}
	if HashSource("a.mc", "x") == HashSource("b.mc", "x") {
		t.Error("unit name not reflected")
	}
	if HashSource("a.mc", "x") != HashSource("a.mc", "x") {
		t.Error("hash not stable")
	}
}

func TestCalleeNames(t *testing.T) {
	f := parseOne(t, `
int f(int a) {
	int *p = malloc();
	helper(p, other(a));
	free(p);
	if (a > 0) { helper(p, 1); }
	return zed();
}`).Funcs[0]
	got := CalleeNames(f)
	want := []string{"helper", "other", "zed"}
	if len(got) != len(want) {
		t.Fatalf("callees = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("callees = %v, want %v", got, want)
		}
	}
}
