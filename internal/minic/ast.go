package minic

import (
	"fmt"
	"strings"
)

// Type is a MiniC type: int, bool, void, or a pointer to another type.
type Type struct {
	// Base is one of "int", "bool", "void".
	Base string
	// Ptr is the number of pointer levels on top of Base.
	Ptr int
}

// IntType, BoolType, and VoidType are the scalar types.
var (
	IntType  = Type{Base: "int"}
	BoolType = Type{Base: "bool"}
	VoidType = Type{Base: "void"}
)

// StructType returns the named struct type (no pointer levels).
func StructType(name string) Type { return Type{Base: "struct " + name} }

// IsStruct reports whether the base type is a struct; StructName returns
// its name.
func (t Type) IsStruct() bool { return len(t.Base) > 7 && t.Base[:7] == "struct " }

// StructName returns the struct's name ("" for non-structs).
func (t Type) StructName() string {
	if !t.IsStruct() {
		return ""
	}
	return t.Base[7:]
}

// Pointer returns a type with one more pointer level.
func (t Type) Pointer() Type { return Type{Base: t.Base, Ptr: t.Ptr + 1} }

// Elem returns the pointee type; it panics on non-pointers.
func (t Type) Elem() Type {
	if t.Ptr == 0 {
		panic("minic: Elem of non-pointer type " + t.String())
	}
	return Type{Base: t.Base, Ptr: t.Ptr - 1}
}

// IsPointer reports whether t has at least one pointer level.
func (t Type) IsPointer() bool { return t.Ptr > 0 }

// IsVoid reports whether t is void.
func (t Type) IsVoid() bool { return t.Base == "void" && t.Ptr == 0 }

func (t Type) String() string {
	return t.Base + strings.Repeat("*", t.Ptr)
}

// Program is a parsed MiniC translation unit set. Files model the paper's
// "compilation units"; the Infer-like and CSA-like baselines confine their
// analysis to a single unit, while Pinpoint analyzes the whole program.
type Program struct {
	Files []*File
}

// Funcs returns all functions of all files in declaration order.
func (p *Program) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, f := range p.Files {
		out = append(out, f.Funcs...)
	}
	return out
}

// File is a single translation unit.
type File struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*FuncDecl
	Structs []*StructDecl
}

// StructDecl declares a struct type with named fields.
type StructDecl struct {
	Pos    Pos
	Name   string
	Fields []Param
}

// VarDecl declares a (global or local) variable, optionally initialized.
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Init Expr // may be nil
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []Param
	Body   *BlockStmt
	// Unit is the file (compilation unit) index the function belongs to;
	// filled by the parser driver.
	Unit int
}

// Stmt is a MiniC statement.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Expr is a MiniC expression.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt assigns Value to the lvalue Target. Target is either an *Ident
// or a *UnaryExpr with Op "*" (a k-level dereference chain).
type AssignStmt struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

// IfStmt is a two-way branch; Else may be nil.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt
}

// WhileStmt is a loop; lowering unrolls it once (§4.2).
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ReturnStmt returns from the enclosing function; Value may be nil.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()  {}
func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

func (s *BlockStmt) StmtPos() Pos  { return s.Pos }
func (s *DeclStmt) StmtPos() Pos   { return s.Decl.Pos }
func (s *AssignStmt) StmtPos() Pos { return s.Pos }
func (s *IfStmt) StmtPos() Pos     { return s.Pos }
func (s *WhileStmt) StmtPos() Pos  { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos { return s.Pos }
func (s *ExprStmt) StmtPos() Pos   { return s.Pos }

// Ident references a named variable.
type Ident struct {
	Pos  Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// BoolLit is true or false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// NullLit is the null pointer constant.
type NullLit struct {
	Pos Pos
}

// UnaryExpr applies Op ("-", "!", "*", "&") to X.
type UnaryExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// BinaryExpr applies Op to X and Y. Ops: + - * / % && || == != < <= > >=.
type BinaryExpr struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// ArrowExpr accesses a field through a struct pointer: X->Field.
type ArrowExpr struct {
	Pos   Pos
	X     Expr
	Field string
}

// CallExpr calls a named function. Intrinsics (malloc, free, and the taint
// source/sink models) use the same node; the lowering pass recognizes them
// by name.
type CallExpr struct {
	Pos  Pos
	Fun  string
	Args []Expr
}

func (*ArrowExpr) exprNode()  {}
func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*NullLit) exprNode()    {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}

func (e *ArrowExpr) ExprPos() Pos  { return e.Pos }
func (e *Ident) ExprPos() Pos      { return e.Pos }
func (e *IntLit) ExprPos() Pos     { return e.Pos }
func (e *BoolLit) ExprPos() Pos    { return e.Pos }
func (e *NullLit) ExprPos() Pos    { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }

// FormatExpr renders an expression as MiniC source, mainly for diagnostics
// and golden tests.
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *BoolLit:
		if x.Val {
			return "true"
		}
		return "false"
	case *NullLit:
		return "null"
	case *ArrowExpr:
		return parenthesize(x.X) + "->" + x.Field
	case *UnaryExpr:
		return x.Op + parenthesize(x.X)
	case *BinaryExpr:
		return parenthesize(x.X) + " " + x.Op + " " + parenthesize(x.Y)
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		return x.Fun + "(" + strings.Join(args, ", ") + ")"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func parenthesize(e Expr) string {
	if b, ok := e.(*BinaryExpr); ok {
		return "(" + FormatExpr(b) + ")"
	}
	return FormatExpr(e)
}
