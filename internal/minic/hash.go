package minic

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"
)

// This file implements the content hashing that the incremental build
// session (package core) keys its artifact store on. Two granularities:
//
//   - HashSource fingerprints one translation unit's raw text, deciding
//     whether the unit must be re-parsed at all;
//   - HashFunc fingerprints one function declaration's AST, including
//     every node's source position. Positions are part of the key on
//     purpose: reports carry positions, so a function whose lines shifted
//     must produce fresh artifacts to stay byte-identical with a
//     from-scratch build.
//
// Both return short hex digests of SHA-256, cheap to compare and stable
// across processes.

// HashSource fingerprints a named unit's source text.
func HashSource(name, src string) string {
	h := sha256.New()
	io.WriteString(h, name)
	h.Write([]byte{0})
	io.WriteString(h, src)
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// HashFunc fingerprints a function declaration: name, signature, body
// structure, literals, and all source positions.
func HashFunc(fn *FuncDecl) string {
	h := sha256.New()
	w := &astHasher{h: h}
	w.str("func", fn.Name)
	w.pos(fn.Pos)
	w.typ(fn.Ret)
	for _, p := range fn.Params {
		w.str("param", p.Name)
		w.typ(p.Type)
	}
	w.stmt(fn.Body)
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// astHasher streams a canonical encoding of AST nodes into a hash. Every
// record is tag-prefixed and NUL-terminated so that concatenations of
// different shapes cannot collide.
type astHasher struct {
	h hash.Hash
}

func (w *astHasher) str(tag, s string) {
	io.WriteString(w.h, tag)
	w.h.Write([]byte{0})
	io.WriteString(w.h, s)
	w.h.Write([]byte{0})
}

func (w *astHasher) pos(p Pos) {
	fmt.Fprintf(w.h, "@%s:%d:%d\x00", p.File, p.Line, p.Col)
}

func (w *astHasher) typ(t Type) {
	w.str("type", t.String())
}

func (w *astHasher) stmt(s Stmt) {
	if s == nil {
		w.str("stmt", "nil")
		return
	}
	switch st := s.(type) {
	case *BlockStmt:
		w.str("block", "")
		w.pos(st.Pos)
		for _, inner := range st.Stmts {
			w.stmt(inner)
		}
		w.str("endblock", "")
	case *DeclStmt:
		w.str("decl", st.Decl.Name)
		w.pos(st.Decl.Pos)
		w.typ(st.Decl.Type)
		w.expr(st.Decl.Init)
	case *AssignStmt:
		w.str("assign", "")
		w.pos(st.Pos)
		w.expr(st.Target)
		w.expr(st.Value)
	case *IfStmt:
		w.str("if", "")
		w.pos(st.Pos)
		w.expr(st.Cond)
		w.stmt(st.Then)
		w.stmt(st.Else)
	case *WhileStmt:
		w.str("while", "")
		w.pos(st.Pos)
		w.expr(st.Cond)
		w.stmt(st.Body)
	case *ReturnStmt:
		w.str("return", "")
		w.pos(st.Pos)
		w.expr(st.Value)
	case *ExprStmt:
		w.str("exprstmt", "")
		w.pos(st.Pos)
		w.expr(st.X)
	default:
		w.str("stmt", fmt.Sprintf("%T", s))
	}
}

func (w *astHasher) expr(e Expr) {
	if e == nil {
		w.str("expr", "nil")
		return
	}
	switch x := e.(type) {
	case *Ident:
		w.str("ident", x.Name)
		w.pos(x.Pos)
	case *IntLit:
		w.str("int", fmt.Sprintf("%d", x.Val))
		w.pos(x.Pos)
	case *BoolLit:
		w.str("bool", fmt.Sprintf("%v", x.Val))
		w.pos(x.Pos)
	case *NullLit:
		w.str("null", "")
		w.pos(x.Pos)
	case *UnaryExpr:
		w.str("unary", x.Op)
		w.pos(x.Pos)
		w.expr(x.X)
	case *BinaryExpr:
		w.str("binary", x.Op)
		w.pos(x.Pos)
		w.expr(x.X)
		w.expr(x.Y)
	case *ArrowExpr:
		w.str("arrow", x.Field)
		w.pos(x.Pos)
		w.expr(x.X)
	case *CallExpr:
		w.str("call", x.Fun)
		w.pos(x.Pos)
		for _, a := range x.Args {
			w.expr(a)
		}
		w.str("endcall", "")
	default:
		w.str("expr", fmt.Sprintf("%T", e))
	}
}

// CalleeNames returns the sorted, de-duplicated names of all functions a
// declaration calls (excluding the malloc/free intrinsics, which lower to
// dedicated opcodes and never become call edges).
func CalleeNames(fn *FuncDecl) []string {
	set := make(map[string]bool)
	var walkExpr func(e Expr)
	var walkStmt func(s Stmt)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *UnaryExpr:
			walkExpr(x.X)
		case *BinaryExpr:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *ArrowExpr:
			walkExpr(x.X)
		case *CallExpr:
			if x.Fun != "malloc" && x.Fun != "free" {
				set[x.Fun] = true
			}
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *BlockStmt:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *DeclStmt:
			if st.Decl.Init != nil {
				walkExpr(st.Decl.Init)
			}
		case *AssignStmt:
			walkExpr(st.Target)
			walkExpr(st.Value)
		case *IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *WhileStmt:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *ReturnStmt:
			if st.Value != nil {
				walkExpr(st.Value)
			}
		case *ExprStmt:
			walkExpr(st.X)
		}
	}
	walkStmt(fn.Body)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
