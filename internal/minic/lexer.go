package minic

import "fmt"

// Lexer turns MiniC source text into a token stream. It supports // line
// comments and /* block */ comments and tracks 1-based line/column positions.
type Lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a Lexer over src, reporting positions against file.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Error is a lexical or syntactic error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for invalid input. At end of
// input it returns a TokEOF token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Lit: word, Pos: p}, nil
		}
		return Token{Kind: TokIdent, Lit: word, Pos: p}, nil
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokInt, Lit: l.src[start:l.off], Pos: p}, nil
	}
	l.advance()
	simple := func(k TokKind) (Token, error) { return Token{Kind: k, Pos: p}, nil }
	two := func(next byte, k2, k1 TokKind) (Token, error) {
		if l.peek() == next {
			l.advance()
			return Token{Kind: k2, Pos: p}, nil
		}
		return Token{Kind: k1, Pos: p}, nil
	}
	switch c {
	case '(':
		return simple(TokLParen)
	case ')':
		return simple(TokRParen)
	case '{':
		return simple(TokLBrace)
	case '}':
		return simple(TokRBrace)
	case ';':
		return simple(TokSemi)
	case ',':
		return simple(TokComma)
	case '+':
		return simple(TokPlus)
	case '-':
		return two('>', TokArrow, TokMinus)
	case '*':
		return simple(TokStar)
	case '/':
		return simple(TokSlash)
	case '%':
		return simple(TokPercent)
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNe, TokBang)
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	case '&':
		return two('&', TokAndAnd, TokAmp)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: TokOrOr, Pos: p}, nil
		}
		return Token{}, &Error{Pos: p, Msg: "unexpected character '|'"}
	}
	return Token{}, &Error{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// Lex tokenizes the whole input, returning all tokens up to and including
// the EOF token.
func Lex(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
