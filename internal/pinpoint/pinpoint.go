// Package pinpoint is the front door to the analysis toolkit: one Config
// struct covering the build pipeline, the detection engine, the persistent
// store, and the HTTP service, where previously each layer grew its own
// options type ad hoc (core.BuildOptions, detect.Options, server.Config).
// The CLI, the server, and tests all construct the same Config and derive
// the per-layer options from it, so a knob added here shows up everywhere
// at once and cross-layer settings (worker counts, the metrics recorder,
// the store) cannot drift apart between layers.
//
// Usage:
//
//	rt, err := pinpoint.Open(pinpoint.Config{Workers: -1, StoreDir: dir})
//	defer rt.Close()
//	sess := rt.NewSession()
//	a, err := sess.Update(units)
//	res := a.CheckAll(checkers.All(), rt.DetectOptions())
//
// The per-layer options types remain for callers that need a single layer,
// but new configuration should start here.
package pinpoint

import (
	"log/slog"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/pta"
	"repro/internal/server"
	"repro/internal/store"
)

// Config is the unified configuration. The zero value gives the historical
// defaults of every layer: in-memory caches only, sequential build and
// detection, paper-default detection bounds, no metrics recording.
type Config struct {
	// Workers is the worker-pool size for both the per-function build
	// stages and detection (conc.Workers semantics: 0/1 = sequential,
	// negative = GOMAXPROCS). The server also uses it as the per-request
	// default.
	Workers int
	// Obs, when non-nil, receives metrics and (when tracing) spans from
	// every layer; it also backs the server's /metrics endpoint and the
	// disk store's counters.
	Obs *obs.Recorder

	// PTA tunes the local points-to analysis (ablations).
	PTA pta.Options
	// DisableConnectors skips the connector transformation (ablation).
	DisableConnectors bool

	// StoreDir, when non-empty, persists per-function artifacts and SMT
	// verdicts in a DiskStore under this directory: a restarted process
	// pointed at the same directory warm-loads instead of rebuilding.
	// Empty keeps the historical in-memory-only behavior.
	StoreDir string
	// StoreMaxBytes bounds the DiskStore's in-memory residency layer
	// (decoded-record cache). 0 selects the store default; negative
	// disables the bound.
	StoreMaxBytes int64
	// Store overrides StoreDir with an already-open store. The caller
	// keeps ownership: Runtime.Close does not close it.
	Store store.Store

	// MaxCallDepth bounds function instances per path (0 = paper default).
	MaxCallDepth int
	// DisablePathSensitivity reports every candidate unchecked (ablation).
	DisablePathSensitivity bool
	// DisableLinearFilter sends every candidate to the solver (ablation).
	DisableLinearFilter bool
	// DisableSMTCache turns off the canonical verdict cache.
	DisableSMTCache bool
	// DisableSMTPrefilter turns off the linear-time refutation pass.
	DisableSMTPrefilter bool
	// SMTIncremental reuses one Push/Pop solver per detection task.
	SMTIncremental bool
	// Witness enables per-report provenance capture.
	Witness bool

	// Addr is the service listen address (server.Config.Addr).
	Addr string
	// MaxInFlight bounds concurrently admitted analysis requests.
	MaxInFlight int
	// RequestTimeout is the per-request deadline (0 = server default,
	// negative = disabled).
	RequestTimeout time.Duration
	// MaxTenants caps concurrently resident per-project sessions
	// (0 = server default of 64, negative = unlimited); beyond the cap
	// the least-recently-used idle tenant is evicted, persisting first
	// when a store is configured.
	MaxTenants int
	// TenantIdle is the age past which an idle tenant's session is
	// evicted (0 = server default of 15m, negative = disabled).
	TenantIdle time.Duration
	// TenantMaxInFlight bounds concurrently admitted requests per tenant
	// under the global MaxInFlight gate (0 = no per-tenant bound).
	TenantMaxInFlight int
	// TSInterval enables the server's flight recorder: metrics snapshot
	// into in-process ring buffers every interval (0 = disabled, unless
	// SLOTarget forces it on; see server.Config.TSInterval).
	TSInterval time.Duration
	// TSRetention is the ring buffers' covered time span (0 = 10m).
	TSRetention time.Duration
	// SLOTarget sets the analyze-latency objective evaluated over the
	// flight recorder (0 = SLO tracking off).
	SLOTarget time.Duration
	// SLOQuantile is the objective's quantile (0 = 0.95).
	SLOQuantile float64
	// SLOFastWindow and SLOSlowWindow are the burn-rate windows
	// (0 = 5m / 1h).
	SLOFastWindow time.Duration
	SLOSlowWindow time.Duration
	// Logger receives the service's structured request log.
	Logger *slog.Logger
}

// Runtime is an opened Config: the store (if any) is live and every layer's
// options can be derived from it. Close releases what Open acquired.
type Runtime struct {
	cfg   Config
	st    store.Store
	owned bool
}

// Open validates cfg and opens its store. With neither StoreDir nor Store
// set it cannot fail and acquires nothing.
func Open(cfg Config) (*Runtime, error) {
	rt := &Runtime{cfg: cfg, st: cfg.Store}
	if rt.st == nil && cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, store.DiskOptions{
			MaxResidentBytes: cfg.StoreMaxBytes,
			Obs:              cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		rt.st = st
		rt.owned = true
	}
	return rt, nil
}

// Close releases the store if Open acquired it. A store passed in via
// Config.Store stays open — its owner closes it.
func (rt *Runtime) Close() error {
	if rt.owned && rt.st != nil {
		st := rt.st
		rt.st = nil
		rt.owned = false
		return st.Close()
	}
	return nil
}

// Store reports the runtime's store: Config.Store, the DiskStore opened
// from Config.StoreDir, or nil.
func (rt *Runtime) Store() store.Store { return rt.st }

// BuildOptions derives the build-pipeline options.
func (rt *Runtime) BuildOptions() core.BuildOptions {
	return core.BuildOptions{
		PTA:               rt.cfg.PTA,
		DisableConnectors: rt.cfg.DisableConnectors,
		Workers:           rt.cfg.Workers,
		Obs:               rt.cfg.Obs,
		Store:             rt.st,
	}
}

// DetectOptions derives the detection-engine options.
func (rt *Runtime) DetectOptions() detect.Options {
	return detect.Options{
		MaxCallDepth:           rt.cfg.MaxCallDepth,
		DisablePathSensitivity: rt.cfg.DisablePathSensitivity,
		DisableLinearFilter:    rt.cfg.DisableLinearFilter,
		DisableSMTCache:        rt.cfg.DisableSMTCache,
		DisableSMTPrefilter:    rt.cfg.DisableSMTPrefilter,
		SMTIncremental:         rt.cfg.SMTIncremental,
		Workers:                rt.cfg.Workers,
		Witness:                rt.cfg.Witness,
		Obs:                    rt.cfg.Obs,
	}
}

// ServerConfig derives the HTTP-service configuration.
func (rt *Runtime) ServerConfig() server.Config {
	return server.Config{
		Addr:              rt.cfg.Addr,
		MaxInFlight:       rt.cfg.MaxInFlight,
		RequestTimeout:    rt.cfg.RequestTimeout,
		Workers:           rt.cfg.Workers,
		Logger:            rt.cfg.Logger,
		Rec:               rt.cfg.Obs,
		Store:             rt.st,
		MaxTenants:        rt.cfg.MaxTenants,
		TenantIdle:        rt.cfg.TenantIdle,
		TenantMaxInFlight: rt.cfg.TenantMaxInFlight,
		TSInterval:        rt.cfg.TSInterval,
		TSRetention:       rt.cfg.TSRetention,
		SLOTarget:         rt.cfg.SLOTarget,
		SLOQuantile:       rt.cfg.SLOQuantile,
		SLOFastWindow:     rt.cfg.SLOFastWindow,
		SLOSlowWindow:     rt.cfg.SLOSlowWindow,
	}
}

// NewSession creates an incremental build session from the runtime's
// build options (store-backed when the runtime has a persistent store).
func (rt *Runtime) NewSession() *core.Session {
	return core.NewSession(rt.BuildOptions())
}

// NewServer creates the analysis service from the runtime's configuration.
func (rt *Runtime) NewServer() *server.Server {
	return server.New(rt.ServerConfig())
}
