package pinpoint_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/checkers"
	"repro/internal/detect"
	"repro/internal/pinpoint"
	"repro/internal/workload"
)

func reportsJSON(t *testing.T, rs []detect.Report) []byte {
	t.Helper()
	js := make([]detect.JSONReport, len(rs))
	for i, r := range rs {
		js[i] = r.ToJSON()
	}
	b, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestConfigRoundTrip drives the whole warm-restart story through the
// unified front door: the same Config the CLI and server build, opened
// twice against one store directory.
func TestConfigRoundTrip(t *testing.T) {
	gen := workload.Generate(workload.Subjects[1], workload.GenOptions{Scale: 40, Taint: true})
	dir := t.TempDir()
	cfg := pinpoint.Config{Workers: 1, StoreDir: dir}

	run := func() ([]byte, int, int) {
		rt, err := pinpoint.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		if rt.Store() == nil || !rt.Store().Persistent() {
			t.Fatal("Open did not produce a persistent store")
		}
		sess := rt.NewSession()
		a, err := sess.Update(gen.Units)
		if err != nil {
			t.Fatal(err)
		}
		res := a.CheckAll(checkers.All(), rt.DetectOptions())
		return reportsJSON(t, res.Reports), a.Artifacts.StoreHits, a.Artifacts.Misses
	}

	cold, coldStoreHits, coldMisses := run()
	if coldStoreHits != 0 || coldMisses == 0 {
		t.Fatalf("cold run: storeHits=%d misses=%d", coldStoreHits, coldMisses)
	}
	warm, warmStoreHits, warmMisses := run()
	if warmStoreHits == 0 || warmMisses != 0 {
		t.Fatalf("warm run: storeHits=%d misses=%d", warmStoreHits, warmMisses)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm restart through Config changed reports:\n%s\n%s", warm, cold)
	}

	// A memory-only Config acquires nothing and stays non-persistent.
	rt, err := pinpoint.Open(pinpoint.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Store() != nil {
		t.Fatal("zero Config opened a store")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}
