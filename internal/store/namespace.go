package store

// DefaultProject is the tenant every request without a project field maps
// to. Its store view is the bare underlying store — no prefix — so a store
// directory written by a pre-tenant server warm-loads into the default
// tenant unchanged, and a single-tenant deployment's on-disk layout is
// byte-identical to the historical one.
const DefaultProject = "default"

// Namespaced returns a view of st whose records live under a per-project
// namespace: every Get/Put rewrites the namespace to "<project>/<ns>", so
// two projects sharing one physical store (and one log file) can never
// collide, and an evicted project's artifacts and verdicts are found again
// on re-admission by re-deriving the same prefix.
//
// The empty project and DefaultProject return st itself (see
// DefaultProject). Project names must already be validated by the caller
// (the tenant layer accepts only [A-Za-z0-9._-], which cannot contain the
// '/' separator, so distinct projects always produce distinct prefixes).
//
// The view shares the underlying store's counters, residency layer, and
// lifetime: Stat and Compact pass through, and Close is a no-op — the
// owner of the underlying store closes it once, not once per project.
func Namespaced(st Store, project string) Store {
	if st == nil || project == "" || project == DefaultProject {
		return st
	}
	return &nsStore{st: st, prefix: project + "/"}
}

type nsStore struct {
	st     Store
	prefix string
}

func (n *nsStore) Get(ns, key string) ([]byte, bool, error) {
	return n.st.Get(n.prefix+ns, key)
}

func (n *nsStore) Put(ns, key string, val []byte) error {
	return n.st.Put(n.prefix+ns, key, val)
}

func (n *nsStore) Stat() Stats    { return n.st.Stat() }
func (n *nsStore) Compact() error { return n.st.Compact() }

// Close is a no-op: the namespaced view does not own the underlying store.
func (n *nsStore) Close() error { return nil }

func (n *nsStore) Persistent() bool { return n.st.Persistent() }
