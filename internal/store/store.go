// Package store provides the pluggable persistence layer behind the
// incremental session's per-function artifacts and the SMT verdict cache.
//
// A Store is a flat content-addressed map: namespaced string keys to opaque
// byte records. Callers derive keys from content fingerprints (AST hashes,
// dependency fingerprints, canonical formula digests), so records never
// need in-place updates — a key either names exactly the bytes it was
// written with, or a newer record for the same key supersedes the old one
// (last writer wins, reclaimed by Compact).
//
// Two implementations exist:
//
//   - MemStore: a process-local map. Persistent() is false, which tells
//     clients that records cannot outlive the process; the session and the
//     verdict cache then skip the encode/decode round-trip entirely and
//     behave exactly like the historical memory-only code paths.
//   - DiskStore: an append-only checksummed log with an in-memory index,
//     read-on-demand record loading, a size-bounded LRU residency layer,
//     and atomic (write-temp-then-rename) compaction.
//
// All implementations are safe for concurrent use.
package store

import "repro/internal/obs"

// Namespaces used by the analysis pipeline. A Store treats namespaces as
// opaque; they exist so artifacts and verdicts can share one log without
// key collisions.
const (
	// NSArtifact holds encoded per-function build artifacts, keyed by
	// program-shape fingerprint + AST hash.
	NSArtifact = "artifact"
	// NSVerdict holds exact-tier SMT verdicts (result + canonical model),
	// keyed by the alpha-normalized formula digest.
	NSVerdict = "verdict"
	// NSVerdictShape holds shape-tier Unsat markers, keyed by the
	// commutative-normalized formula digest.
	NSVerdictShape = "vshape"
)

// Stats is a point-in-time snapshot of a store's counters.
type Stats struct {
	// Hits / Misses count Get outcomes (a corrupt record reads as a miss).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts records accepted; DedupedPuts counts Put calls skipped
	// because the key already held byte-identical content.
	Puts        int64 `json:"puts"`
	DedupedPuts int64 `json:"dedupedPuts"`
	// Evictions counts residency-layer evictions (the record stays on
	// disk; only the cached bytes are dropped).
	Evictions int64 `json:"evictions"`
	// CorruptRecords counts records rejected by checksum or framing
	// validation, at open or at read time.
	CorruptRecords int64 `json:"corruptRecords"`
	// Compactions counts completed Compact runs; LastCompactUnixNano is
	// the wall-clock completion time of the latest (0 = never).
	Compactions         int64 `json:"compactions"`
	LastCompactUnixNano int64 `json:"lastCompactUnixNano"`
	// Records is the live (indexed) record count.
	Records int `json:"records"`
	// ResidentBytes is the current residency-layer footprint;
	// MaxResidentBytes is its configured bound (0 = unbounded).
	ResidentBytes    int64 `json:"residentBytes"`
	MaxResidentBytes int64 `json:"maxResidentBytes"`
	// DiskBytes is the backing file size (0 for MemStore).
	DiskBytes int64 `json:"diskBytes"`
}

// Store is the persistence interface the session and the verdict cache
// speak. Implementations must be safe for concurrent use.
type Store interface {
	// Get returns the record stored under (ns, key), or ok=false if the
	// key is absent or its record failed validation.
	Get(ns, key string) (val []byte, ok bool, err error)
	// Put stores val under (ns, key). Re-putting identical content is a
	// cheap no-op; different content supersedes the old record.
	Put(ns, key string, val []byte) error
	// Stat reports the store's counters.
	Stat() Stats
	// Compact reclaims space held by superseded or dropped records.
	Compact() error
	// Close flushes and releases resources. The store must not be used
	// afterwards.
	Close() error
	// Persistent reports whether records survive process exit. Clients
	// use this to skip encode/decode work that could never pay off.
	Persistent() bool
}

// counters mirrors Stats into an obs.Recorder so /metrics exposes
// residency and compaction behavior. A nil recorder is a no-op.
func publish(rec *obs.Recorder, s Stats) {
	if rec == nil {
		return
	}
	rec.Gauge("store.records").Set(int64(s.Records))
	rec.Gauge("store.resident_bytes").Set(s.ResidentBytes)
	rec.Gauge("store.disk_bytes").Set(s.DiskBytes)
}
