package store

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Log format. The file starts with an 8-byte magic+version header; each
// record is length-prefixed and carries a CRC32 over its payload:
//
//	header : "PPSTOR\x00\x01"
//	record : u32 nsLen | u32 keyLen | u32 valLen | ns | key | val | u32 crc
//
// All integers are little-endian; crc is crc32.ChecksumIEEE(ns|key|val).
// The log is append-only: a Put for an existing key appends a superseding
// record, and the in-memory index keeps only the latest offset per key.
// Compact rewrites the live records into a temp file and renames it over
// the log, so readers either see the old complete log or the new one.
//
// Crash safety: records are framed and checksummed, so a torn append (or
// any trailing garbage) is detected at open and the log is truncated back
// to its last intact record. A checksum mismatch in the middle of the log
// invalidates the framing of everything after it; scanning stops there and
// the tail is dropped the same way. Dropped records are re-derived by the
// analysis (artifacts rebuild, verdicts re-solve) — corruption can cost
// warmth, never correctness.
var diskMagic = [8]byte{'P', 'P', 'S', 'T', 'O', 'R', 0, 1}

const recHeaderLen = 12 // three u32 lengths
const maxRecLen = 1 << 30

// DiskOptions configures a DiskStore.
type DiskOptions struct {
	// MaxResidentBytes bounds the in-memory residency layer (the LRU
	// cache of record bytes served without touching the file). 0 means
	// the default of 256 MiB; negative means unbounded.
	MaxResidentBytes int64
	// Obs, when non-nil, receives store.* counters and gauges.
	Obs *obs.Recorder
}

const defaultMaxResidentBytes = 256 << 20

// DiskStore is the persistent Store: an append-only checksummed log with
// read-on-demand loading and a size-bounded residency layer.
type DiskStore struct {
	dir string
	rec *obs.Recorder

	mu      sync.Mutex
	f       *os.File
	size    int64 // committed file size (append offset)
	index   map[string]indexEntry
	res     map[string]*list.Element // residency: key -> LRU element
	lru     *list.List               // front = most recent; values are *resEntry
	resSize int64
	maxRes  int64
	stats   Stats
	closed  bool
}

type indexEntry struct {
	off    int64 // offset of the record header
	nsLen  int
	keyLen int
	valLen int
	crc    uint32
}

type resEntry struct {
	key string
	val []byte
}

// LogPath returns the path of the store's backing log inside dir.
func LogPath(dir string) string { return filepath.Join(dir, "store.log") }

// Open opens (creating if needed) the disk store rooted at dir. The log is
// scanned to rebuild the index; a corrupt or torn tail is truncated away
// (counted in Stats.CorruptRecords) so the store always opens usable.
func Open(dir string, opts DiskOptions) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	maxRes := opts.MaxResidentBytes
	switch {
	case maxRes == 0:
		maxRes = defaultMaxResidentBytes
	case maxRes < 0:
		maxRes = 0 // unbounded
	}
	s := &DiskStore{
		dir:    dir,
		rec:    opts.Obs,
		index:  make(map[string]indexEntry),
		res:    make(map[string]*list.Element),
		lru:    list.New(),
		maxRes: maxRes,
	}
	s.stats.MaxResidentBytes = maxRes
	if err := s.openAndScan(); err != nil {
		return nil, err
	}
	s.publish()
	return s, nil
}

func (s *DiskStore) openAndScan() error {
	path := LogPath(s.dir)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if fi.Size() == 0 {
		if _, err := f.Write(diskMagic[:]); err != nil {
			f.Close()
			return fmt.Errorf("store: writing header: %w", err)
		}
		s.f, s.size = f, int64(len(diskMagic))
		return nil
	}
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || hdr != diskMagic {
		f.Close()
		return fmt.Errorf("store: %s is not a pinpoint store log (bad header)", path)
	}
	// Scan records, remembering the end of the last intact one.
	good := int64(len(diskMagic))
	var lenBuf [recHeaderLen]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				f.Close()
				return fmt.Errorf("store: scanning %s: %w", path, err)
			}
			if err == io.ErrUnexpectedEOF {
				s.stats.CorruptRecords++
			}
			break
		}
		nsLen := int(binary.LittleEndian.Uint32(lenBuf[0:4]))
		keyLen := int(binary.LittleEndian.Uint32(lenBuf[4:8]))
		valLen := int(binary.LittleEndian.Uint32(lenBuf[8:12]))
		if nsLen <= 0 || keyLen <= 0 || valLen < 0 ||
			nsLen > maxRecLen || keyLen > maxRecLen || valLen > maxRecLen {
			s.stats.CorruptRecords++
			break
		}
		payload := nsLen + keyLen + valLen
		if cap(buf) < payload+4 {
			buf = make([]byte, payload+4)
		}
		buf = buf[:payload+4]
		if _, err := io.ReadFull(f, buf); err != nil {
			s.stats.CorruptRecords++
			break
		}
		crc := binary.LittleEndian.Uint32(buf[payload:])
		if crc32.ChecksumIEEE(buf[:payload]) != crc {
			s.stats.CorruptRecords++
			break
		}
		ns := string(buf[:nsLen])
		key := string(buf[nsLen : nsLen+keyLen])
		k := memKey(ns, key)
		if _, ok := s.index[k]; !ok {
			s.stats.Records++
		}
		s.index[k] = indexEntry{off: good, nsLen: nsLen, keyLen: keyLen, valLen: valLen, crc: crc}
		good += int64(recHeaderLen + payload + 4)
	}
	// Drop any torn/corrupt tail so future appends extend an intact log.
	fi, err = f.Stat()
	if err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating corrupt tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.f, s.size = f, good
	return nil
}

// Persistent implements Store.
func (s *DiskStore) Persistent() bool { return true }

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// Get implements Store: residency layer first, then a read-on-demand load
// from the log with checksum verification. A record failing its checksum
// is dropped from the index and reported as a miss, so callers fall back
// to rebuilding — corrupted state can never produce wrong output.
func (s *DiskStore) Get(ns, key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errors.New("store: closed")
	}
	k := memKey(ns, key)
	if el, ok := s.res[k]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		s.count("store.hits")
		return el.Value.(*resEntry).val, true, nil
	}
	ent, ok := s.index[k]
	if !ok {
		s.stats.Misses++
		s.count("store.misses")
		return nil, false, nil
	}
	val, err := s.readRecordLocked(ns, key, ent)
	if err != nil {
		// Checksum/framing failure: forget the record and miss.
		delete(s.index, k)
		s.stats.Records--
		s.stats.CorruptRecords++
		s.stats.Misses++
		s.count("store.corrupt_records")
		s.count("store.misses")
		s.publish()
		return nil, false, nil
	}
	s.stats.Hits++
	s.count("store.hits")
	s.admitLocked(k, val)
	return val, true, nil
}

func (s *DiskStore) readRecordLocked(ns, key string, ent indexEntry) ([]byte, error) {
	payload := ent.nsLen + ent.keyLen + ent.valLen
	buf := make([]byte, recHeaderLen+payload+4)
	if _, err := s.f.ReadAt(buf, ent.off); err != nil {
		return nil, err
	}
	if int(binary.LittleEndian.Uint32(buf[0:4])) != ent.nsLen ||
		int(binary.LittleEndian.Uint32(buf[4:8])) != ent.keyLen ||
		int(binary.LittleEndian.Uint32(buf[8:12])) != ent.valLen {
		return nil, errors.New("store: record framing mismatch")
	}
	body := buf[recHeaderLen : recHeaderLen+payload]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[recHeaderLen+payload:]) {
		return nil, errors.New("store: record checksum mismatch")
	}
	if string(body[:ent.nsLen]) != ns || string(body[ent.nsLen:ent.nsLen+ent.keyLen]) != key {
		return nil, errors.New("store: record key mismatch")
	}
	val := make([]byte, ent.valLen)
	copy(val, body[ent.nsLen+ent.keyLen:])
	return val, nil
}

// Put implements Store. Identical re-puts are deduplicated without any
// I/O beyond a checksum; new or changed content is appended.
func (s *DiskStore) Put(ns, key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	k := memKey(ns, key)
	crc := crc32.ChecksumIEEE(joinPayload(ns, key, val))
	if ent, ok := s.index[k]; ok && ent.valLen == len(val) && ent.crc == crc {
		s.stats.DedupedPuts++
		return nil
	}
	off, err := s.appendLocked(ns, key, val, crc)
	if err != nil {
		return err
	}
	if _, ok := s.index[k]; !ok {
		s.stats.Records++
	}
	s.index[k] = indexEntry{off: off, nsLen: len(ns), keyLen: len(key), valLen: len(val), crc: crc}
	s.stats.Puts++
	s.count("store.puts")
	cp := make([]byte, len(val))
	copy(cp, val)
	s.admitLocked(k, cp)
	s.publish()
	return nil
}

func joinPayload(ns, key string, val []byte) []byte {
	out := make([]byte, 0, len(ns)+len(key)+len(val))
	out = append(out, ns...)
	out = append(out, key...)
	out = append(out, val...)
	return out
}

func (s *DiskStore) appendLocked(ns, key string, val []byte, crc uint32) (int64, error) {
	off := s.size
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(ns)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(val)))
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	for _, chunk := range [][]byte{hdr[:], []byte(ns), []byte(key), val, tail[:]} {
		if _, err := s.f.Write(chunk); err != nil {
			// The log may now hold a torn record; the next open truncates
			// it. Keep size pointing at the last intact boundary.
			if _, serr := s.f.Seek(off, io.SeekStart); serr == nil {
				_ = s.f.Truncate(off)
			}
			return 0, fmt.Errorf("store: append: %w", err)
		}
	}
	s.size = off + int64(recHeaderLen+len(ns)+len(key)+len(val)+4)
	return off, nil
}

// admitLocked inserts val into the residency layer, evicting LRU entries
// until the footprint fits the bound.
func (s *DiskStore) admitLocked(k string, val []byte) {
	if el, ok := s.res[k]; ok {
		s.resSize -= int64(len(el.Value.(*resEntry).val))
		el.Value.(*resEntry).val = val
		s.resSize += int64(len(val))
		s.lru.MoveToFront(el)
	} else {
		if s.maxRes > 0 && int64(len(val)) > s.maxRes {
			// Larger than the whole budget: serve it but never cache it.
			s.stats.ResidentBytes = s.resSize
			return
		}
		s.res[k] = s.lru.PushFront(&resEntry{key: k, val: val})
		s.resSize += int64(len(val))
	}
	if s.maxRes > 0 {
		for s.resSize > s.maxRes && s.lru.Len() > 0 {
			el := s.lru.Back()
			ent := el.Value.(*resEntry)
			s.lru.Remove(el)
			delete(s.res, ent.key)
			s.resSize -= int64(len(ent.val))
			s.stats.Evictions++
			s.count("store.evictions")
		}
	}
	s.stats.ResidentBytes = s.resSize
}

// Stat implements Store.
func (s *DiskStore) Stat() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ResidentBytes = s.resSize
	st.DiskBytes = s.size
	return st
}

// Compact implements Store: the live records are rewritten (in sorted key
// order, for deterministic output) into store.log.tmp, fsynced, and
// renamed over the log — an interrupted compaction leaves the old log
// untouched.
func (s *DiskStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tmpPath := LogPath(s.dir) + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds
	w := bufio.NewWriter(tmp)
	if _, err := w.Write(diskMagic[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	newIndex := make(map[string]indexEntry, len(s.index))
	off := int64(len(diskMagic))
	var hdr [recHeaderLen]byte
	var tail [4]byte
	for _, k := range keys {
		ent := s.index[k]
		ns, key, _ := splitKey(k)
		val, err := s.readRecordLocked(ns, key, ent)
		if err != nil {
			// Unreadable record: drop it from the compacted log.
			s.stats.CorruptRecords++
			s.stats.Records--
			s.count("store.corrupt_records")
			continue
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(ns)))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(key)))
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(val)))
		binary.LittleEndian.PutUint32(tail[:], ent.crc)
		for _, chunk := range [][]byte{hdr[:], []byte(ns), []byte(key), val, tail[:]} {
			if _, err := w.Write(chunk); err != nil {
				tmp.Close()
				return fmt.Errorf("store: compact: %w", err)
			}
		}
		newIndex[k] = indexEntry{off: off, nsLen: len(ns), keyLen: len(key), valLen: len(val), crc: ent.crc}
		off += int64(recHeaderLen + len(ns) + len(key) + len(val) + 4)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, LogPath(s.dir)); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	old := s.f
	f, err := os.OpenFile(LogPath(s.dir), os.O_RDWR, 0o666)
	if err != nil {
		return fmt.Errorf("store: compact: reopening log: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	old.Close()
	s.f, s.size, s.index = f, off, newIndex
	s.stats.Compactions++
	s.stats.LastCompactUnixNano = time.Now().UnixNano()
	s.count("store.compactions")
	s.publish()
	return nil
}

func splitKey(k string) (ns, key string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:], true
		}
	}
	return "", "", false
}

// Close implements Store: flushes and fsyncs the log.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	serr := s.f.Sync()
	cerr := s.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (s *DiskStore) count(name string) {
	if s.rec != nil {
		s.rec.Counter(name).Inc()
	}
}

func (s *DiskStore) publish() {
	if s.rec == nil {
		return
	}
	st := s.stats
	st.ResidentBytes = s.resSize
	st.DiskBytes = s.size
	publish(s.rec, st)
}
