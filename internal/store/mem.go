package store

import "sync"

// MemStore is the in-process Store: a mutex-guarded map with the same
// observable API as DiskStore but no persistence. It is the default
// injection point — a session configured with a MemStore behaves exactly
// like the historical memory-only session, because clients consult
// Persistent() and skip the byte round-trip when records cannot outlive
// the process anyway.
type MemStore struct {
	mu    sync.Mutex
	m     map[string][]byte
	stats Stats
}

// NewMem returns an empty MemStore.
func NewMem() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

func memKey(ns, key string) string { return ns + "\x00" + key }

// Get implements Store.
func (s *MemStore) Get(ns, key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[memKey(ns, key)]
	if !ok {
		s.stats.Misses++
		return nil, false, nil
	}
	s.stats.Hits++
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

// Put implements Store.
func (s *MemStore) Put(ns, key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := memKey(ns, key)
	if old, ok := s.m[k]; ok && string(old) == string(val) {
		s.stats.DedupedPuts++
		return nil
	}
	if old, ok := s.m[k]; ok {
		s.stats.ResidentBytes -= int64(len(old))
	} else {
		s.stats.Records++
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	s.m[k] = cp
	s.stats.Puts++
	s.stats.ResidentBytes += int64(len(cp))
	return nil
}

// Stat implements Store.
func (s *MemStore) Stat() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Compact implements Store. A map has no garbage to reclaim.
func (s *MemStore) Compact() error { return nil }

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// Persistent implements Store: MemStore records die with the process.
func (s *MemStore) Persistent() bool { return false }
