package store

import (
	"path/filepath"
	"testing"
)

// Distinct projects see disjoint key spaces over one shared store; the
// default project sees the bare store, so records written before the
// tenant layer existed stay visible to it.
func TestNamespacedIsolation(t *testing.T) {
	base, err := Open(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	alpha := Namespaced(base, "alpha")
	beta := Namespaced(base, "beta")
	def := Namespaced(base, DefaultProject)
	if def != Store(base) {
		t.Fatal("default project view is not the bare store")
	}
	if got := Namespaced(base, ""); got != Store(base) {
		t.Fatal("empty project view is not the bare store")
	}

	if err := base.Put(NSArtifact, "k", []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	if err := alpha.Put(NSArtifact, "k", []byte("from-alpha")); err != nil {
		t.Fatal(err)
	}
	if err := beta.Put(NSArtifact, "k", []byte("from-beta")); err != nil {
		t.Fatal(err)
	}

	want := map[string]string{"legacy": "", "from-alpha": "", "from-beta": ""}
	for name, view := range map[string]Store{"default": def, "alpha": alpha, "beta": beta} {
		v, ok, err := view.Get(NSArtifact, "k")
		if err != nil || !ok {
			t.Fatalf("%s: Get = ok=%v err=%v", name, ok, err)
		}
		switch name {
		case "default":
			if string(v) != "legacy" {
				t.Errorf("default read %q, want the un-prefixed record", v)
			}
		case "alpha":
			if string(v) != "from-alpha" {
				t.Errorf("alpha read %q", v)
			}
		case "beta":
			if string(v) != "from-beta" {
				t.Errorf("beta read %q", v)
			}
		}
		delete(want, string(v))
	}
	if len(want) != 0 {
		t.Errorf("cross-project reads collided; unseen records: %v", want)
	}

	// The view shares the physical store: three records live in one log.
	if st := base.Stat(); st.Records != 3 {
		t.Errorf("shared store holds %d records, want 3", st.Records)
	}

	// Closing a view must not close the shared store.
	if err := alpha.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := beta.Get(NSArtifact, "k"); err != nil || !ok {
		t.Fatalf("store unusable after closing a namespaced view: ok=%v err=%v", ok, err)
	}
	if !alpha.Persistent() || !beta.Persistent() {
		t.Error("namespaced views lost the Persistent capability")
	}
}

// Namespaced records survive a reopen under the same prefix — the warm
// re-admission path an evicted tenant depends on.
func TestNamespacedReopen(t *testing.T) {
	dir := t.TempDir()
	base, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Namespaced(base, "proj").Put(NSVerdict, "v", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(filepath.Clean(dir), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v, ok, err := Namespaced(re, "proj").Get(NSVerdict, "v")
	if err != nil || !ok || len(v) != 1 || v[0] != 1 {
		t.Fatalf("namespaced record lost across reopen: %v ok=%v err=%v", v, ok, err)
	}
	if _, ok, _ := re.Get(NSVerdict, "v"); ok {
		t.Fatal("bare store sees the namespaced record")
	}
}
