package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMem()
	if s.Persistent() {
		t.Fatal("MemStore must report Persistent() == false")
	}
	if _, ok, err := s.Get(NSArtifact, "k"); err != nil || ok {
		t.Fatalf("empty Get = ok=%v err=%v", ok, err)
	}
	if err := s.Put(NSArtifact, "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get(NSArtifact, "k")
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("Get = %q ok=%v err=%v", v, ok, err)
	}
	// Namespaces do not collide.
	if _, ok, _ := s.Get(NSVerdict, "k"); ok {
		t.Fatal("namespace collision")
	}
	// Identical re-put dedups; changed content supersedes.
	if err := s.Put(NSArtifact, "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSArtifact, "k", []byte("world!")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Get(NSArtifact, "k")
	if string(v) != "world!" {
		t.Fatalf("superseded Get = %q", v)
	}
	st := s.Stat()
	if st.Records != 1 || st.DedupedPuts != 1 || st.Puts != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ResidentBytes != int64(len("world!")) {
		t.Fatalf("ResidentBytes = %d", st.ResidentBytes)
	}
}

func TestDiskStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Persistent() {
		t.Fatal("DiskStore must report Persistent() == true")
	}
	vals := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := bytes.Repeat([]byte{byte(i)}, 100+i)
		vals[k] = v
		if err := s.Put(NSArtifact, k, v); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede one, dedup another.
	vals["key-03"] = []byte("replaced")
	if err := s.Put(NSArtifact, "key-03", vals["key-03"]); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSArtifact, "key-04", vals["key-04"]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stat(); st.DedupedPuts != 1 || st.Records != 20 {
		t.Fatalf("stats = %+v", st)
	}
	for k, want := range vals {
		got, ok, err := s.Get(NSArtifact, k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%s) = %q ok=%v err=%v, want %q", k, got, ok, err, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the scan must rebuild the index with last-writer-wins.
	s2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stat(); st.Records != 20 || st.CorruptRecords != 0 {
		t.Fatalf("reopen stats = %+v", st)
	}
	for k, want := range vals {
		got, ok, err := s2.Get(NSArtifact, k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("reopen Get(%s) = %q ok=%v err=%v, want %q", k, got, ok, err, want)
		}
	}
}

func TestDiskStoreResidencyBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DiskOptions{MaxResidentBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(NSArtifact, fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 300)); err != nil {
			t.Fatal(err)
		}
		if st := s.Stat(); st.ResidentBytes > 1000 {
			t.Fatalf("resident %d exceeds bound after put %d", st.ResidentBytes, i)
		}
	}
	st := s.Stat()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions, stats = %+v", st)
	}
	// Evicted records are still readable from disk, and reads keep the
	// residency layer within its bound.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		v, ok, err := s.Get(NSArtifact, k)
		if err != nil || !ok || len(v) != 300 || v[0] != byte(i) {
			t.Fatalf("Get(%s) = len %d ok=%v err=%v", k, len(v), ok, err)
		}
		if st := s.Stat(); st.ResidentBytes > 1000 {
			t.Fatalf("resident %d exceeds bound after get %s", st.ResidentBytes, k)
		}
	}
	// A value larger than the whole budget is served but never cached.
	if err := s.Put(NSArtifact, "huge", make([]byte, 2000)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stat(); st.ResidentBytes > 1000 {
		t.Fatalf("resident %d exceeds bound after oversized put", st.ResidentBytes)
	}
	if v, ok, _ := s.Get(NSArtifact, "huge"); !ok || len(v) != 2000 {
		t.Fatalf("oversized Get = len %d ok=%v", len(v), ok)
	}
}

func TestDiskStoreTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSArtifact, "a", []byte("intact record")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSArtifact, "b", []byte("this one gets torn")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-payload, as a crash during append would.
	path := LogPath(dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stat()
	if st.CorruptRecords == 0 || st.Records != 1 {
		t.Fatalf("stats after torn tail = %+v", st)
	}
	if v, ok, _ := s2.Get(NSArtifact, "a"); !ok || string(v) != "intact record" {
		t.Fatalf("intact record lost: %q ok=%v", v, ok)
	}
	if _, ok, _ := s2.Get(NSArtifact, "b"); ok {
		t.Fatal("torn record served")
	}
	// The truncated log must accept new appends and survive a reopen.
	if err := s2.Put(NSArtifact, "c", []byte("after recovery")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if v, ok, _ := s3.Get(NSArtifact, "c"); !ok || string(v) != "after recovery" {
		t.Fatalf("post-recovery append lost: %q ok=%v", v, ok)
	}
}

func TestDiskStoreBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSArtifact, "a", bytes.Repeat([]byte("x"), 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(NSArtifact, "b", bytes.Repeat([]byte("y"), 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the first record's value.
	path := LogPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, bytes.Repeat([]byte("x"), 64))
	if i < 0 {
		t.Fatal("value not found in log")
	}
	data[i+10] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	// The flip invalidates record a's checksum; the open-time scan stops
	// there, dropping a and everything after it — detected, never served.
	s2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stat(); st.CorruptRecords == 0 {
		t.Fatalf("bit flip not detected: %+v", st)
	}
	if v, ok, _ := s2.Get(NSArtifact, "a"); ok {
		t.Fatalf("corrupt record served: %q", v)
	}
}

func TestDiskStoreGetTimeCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DiskOptions{MaxResidentBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(NSArtifact, "a", bytes.Repeat([]byte("z"), 64)); err != nil {
		t.Fatal(err)
	}
	// Drop residency so the next Get must hit the file, then corrupt the
	// record behind the store's back.
	s.mu.Lock()
	for k, el := range s.res {
		s.lru.Remove(el)
		delete(s.res, k)
	}
	s.resSize = 0
	s.mu.Unlock()
	data, err := os.ReadFile(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, bytes.Repeat([]byte("z"), 64))
	data[i] ^= 0x01
	f, err := os.OpenFile(LogPath(dir), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data[i:i+1], int64(i)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, ok, err := s.Get(NSArtifact, "a"); err != nil || ok {
		t.Fatalf("corrupt read-time Get = ok=%v err=%v, want miss", ok, err)
	}
	st := s.Stat()
	if st.CorruptRecords != 1 || st.Records != 0 {
		t.Fatalf("stats after read-time corruption = %+v", st)
	}
}

func TestDiskStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Write each key several times so the log holds garbage.
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			v := fmt.Sprintf("round-%d-key-%d-%s", round, i, bytes.Repeat([]byte("p"), 50))
			if err := s.Put(NSVerdict, fmt.Sprintf("k%d", i), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stat().DiskBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stat()
	if st.DiskBytes >= before {
		t.Fatalf("compaction did not shrink log: %d -> %d", before, st.DiskBytes)
	}
	if st.Compactions != 1 || st.LastCompactUnixNano == 0 || st.Records != 8 {
		t.Fatalf("stats after compact = %+v", st)
	}
	// Records survive compaction, appends still work, and a reopen sees
	// the compacted log.
	for i := 0; i < 8; i++ {
		v, ok, err := s.Get(NSVerdict, fmt.Sprintf("k%d", i))
		if err != nil || !ok || !bytes.Contains(v, []byte("round-4")) {
			t.Fatalf("post-compact Get(k%d) = %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if err := s.Put(NSVerdict, "post", []byte("post-compact append")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stat(); st.Records != 9 || st.CorruptRecords != 0 {
		t.Fatalf("reopen-after-compact stats = %+v", st)
	}
	if v, ok, _ := s2.Get(NSVerdict, "post"); !ok || string(v) != "post-compact append" {
		t.Fatalf("post-compact append lost: %q ok=%v", v, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "store.log.tmp")); !os.IsNotExist(err) {
		t.Fatalf("compaction temp file left behind: %v", err)
	}
}

func TestDiskStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DiskOptions{MaxResidentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i%10)
				v := bytes.Repeat([]byte{byte(g)}, 64+i)
				if err := s.Put(NSArtifact, k, v); err != nil {
					done <- err
					return
				}
				if got, ok, err := s.Get(NSArtifact, k); err != nil || (ok && len(got) == 0) {
					done <- fmt.Errorf("Get(%s) ok=%v err=%v", k, ok, err)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
