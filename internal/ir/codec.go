package ir

import (
	"fmt"

	"repro/internal/minic"
	"repro/internal/wirebin"
)

// This file defines the wire form of a function for the persistent
// artifact store. The IR is a pointer graph with cycles (values point at
// defining instructions, instructions at blocks, blocks at the function),
// so the wire form flattens everything to the dense per-function ID spaces
// the constructors already maintain: values, instructions, and blocks are
// serialized once and referenced by int32 ID (-1 = nil). Export and Import
// reproduce the function exactly — including ID counters and constant
// intern tables — so a warm-loaded function is indistinguishable from the
// one the build produced.

// Strings that repeat across a function's values and instructions — type
// base names, source file names, callee names, struct field names — are
// interned into FuncWire.Strs and referenced by index (-1 = ""). gob does
// not deduplicate strings, so without the table every instruction's
// Pos.File would be re-transmitted and re-allocated on decode; with it the
// per-element fields are plain integers.

// ValueWire is the serialized form of one Value.
type ValueWire struct {
	ID       int32
	Kind     ValueKind
	Name     string
	TypeBase int32 // string-table index of Type.Base
	TypePtr  int32
	Def      int32 // instruction ID, -1 for none
	IntVal   int64
	BoolVal  bool
	ParamIdx int32
	Aux      bool
}

// InstrWire is the serialized form of one Instr. Dst/Dsts/Args hold value
// IDs; Blocks holds block IDs. A -1 slot means nil (void call receivers).
// Sub, Callee, and PosFile are string-table indices.
type InstrWire struct {
	ID        int32
	Op        Op
	Dst       int32
	Dsts      []int32
	Args      []int32
	Sub       int32
	Callee    int32
	Blocks    []int32
	PosFile   int32
	PosLine   int32
	PosCol    int32
	Synthetic bool
}

// BlockWire is the serialized form of one Block.
type BlockWire struct {
	ID     int32
	Instrs []InstrWire
	Preds  []int32
	Succs  []int32
}

// FuncWire is the serialized form of one Func.
type FuncWire struct {
	Name   string
	Ret    minic.Type
	Params []int32
	Strs   []string    // intern table for repeated strings
	Values []ValueWire // every live value, ascending ID
	Blocks []BlockWire // in Func.Blocks order
	Entry  int32
	Exit   int32
	Unit   int
	Pos    minic.Pos
	AuxIn  []AuxSpec
	AuxOut []AuxSpec
	// ID counters, preserved so post-import edits allocate fresh IDs.
	NextValID   int32
	NextInstrID int32
	NextBlockID int32
}

// strTable interns strings during export; index -1 is the empty string.
type strTable struct {
	ids map[string]int32
	s   []string
}

func (t *strTable) id(s string) int32 {
	if s == "" {
		return -1
	}
	if id, ok := t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]int32)
	}
	id := int32(len(t.s))
	t.ids[s] = id
	t.s = append(t.s, s)
	return id
}

// Index maps a function's dense ID spaces back to pointers. The companion
// codecs (ssa, pta, seg) resolve their serialized references through it.
type Index struct {
	Values []*Value
	Instrs []*Instr
	Blocks []*Block
}

// BuildIndex collects every value, instruction, and block reachable from f
// into ID-indexed tables.
func BuildIndex(f *Func) *Index {
	ix := &Index{
		Values: make([]*Value, f.nextValID),
		Instrs: make([]*Instr, f.nextInstrID),
		Blocks: make([]*Block, f.nextBlockID),
	}
	addV := func(v *Value) {
		if v != nil {
			ix.Values[v.ID] = v
		}
	}
	for _, p := range f.Params {
		addV(p)
	}
	for _, c := range f.intConsts {
		addV(c)
	}
	addV(f.boolConsts[0])
	addV(f.boolConsts[1])
	addV(f.nullConst)
	for _, b := range f.Blocks {
		ix.Blocks[b.ID] = b
		for _, in := range b.Instrs {
			ix.Instrs[in.ID] = in
			addV(in.Dst)
			for _, d := range in.Dsts {
				addV(d)
			}
			for _, a := range in.Args {
				addV(a)
			}
		}
	}
	return ix
}

func valID(v *Value) int32 {
	if v == nil {
		return -1
	}
	return int32(v.ID)
}

func instrID(in *Instr) int32 {
	if in == nil {
		return -1
	}
	return int32(in.ID)
}

func blockID(b *Block) int32 {
	if b == nil {
		return -1
	}
	return int32(b.ID)
}

// ExportFunc flattens f into its wire form. The returned Index is the one
// used during export, handed back so callers can serialize companion
// structures against the same ID spaces.
func ExportFunc(f *Func) (*FuncWire, *Index) {
	ix := BuildIndex(f)
	w := &FuncWire{
		Name: f.Name, Ret: f.Ret,
		Entry: blockID(f.Entry), Exit: blockID(f.Exit),
		Unit: f.Unit, Pos: f.Pos,
		AuxIn: f.AuxIn, AuxOut: f.AuxOut,
		NextValID:   int32(f.nextValID),
		NextInstrID: int32(f.nextInstrID),
		NextBlockID: int32(f.nextBlockID),
	}
	w.Params = make([]int32, len(f.Params))
	for i, p := range f.Params {
		w.Params[i] = valID(p)
	}
	var strs strTable
	for _, v := range ix.Values {
		if v == nil {
			continue // ID allocated but value no longer live
		}
		w.Values = append(w.Values, ValueWire{
			ID: int32(v.ID), Kind: v.Kind, Name: v.Name,
			TypeBase: strs.id(v.Type.Base), TypePtr: int32(v.Type.Ptr),
			Def: instrID(v.Def), IntVal: v.IntVal, BoolVal: v.BoolVal,
			ParamIdx: int32(v.ParamIdx), Aux: v.Aux,
		})
	}
	w.Blocks = make([]BlockWire, len(f.Blocks))
	for i, b := range f.Blocks {
		bw := BlockWire{ID: int32(b.ID)}
		bw.Instrs = make([]InstrWire, len(b.Instrs))
		for j, in := range b.Instrs {
			iw := InstrWire{
				ID: int32(in.ID), Op: in.Op, Dst: valID(in.Dst),
				Sub: strs.id(in.Sub), Callee: strs.id(in.Callee),
				PosFile: strs.id(in.Pos.File), PosLine: int32(in.Pos.Line), PosCol: int32(in.Pos.Col),
				Synthetic: in.Synthetic,
			}
			if len(in.Dsts) > 0 {
				iw.Dsts = make([]int32, len(in.Dsts))
				for k, d := range in.Dsts {
					iw.Dsts[k] = valID(d)
				}
			}
			if len(in.Args) > 0 {
				iw.Args = make([]int32, len(in.Args))
				for k, a := range in.Args {
					iw.Args[k] = valID(a)
				}
			}
			if len(in.Blocks) > 0 {
				iw.Blocks = make([]int32, len(in.Blocks))
				for k, t := range in.Blocks {
					iw.Blocks[k] = blockID(t)
				}
			}
			bw.Instrs[j] = iw
		}
		if len(b.Preds) > 0 {
			bw.Preds = make([]int32, len(b.Preds))
			for j, p := range b.Preds {
				bw.Preds[j] = blockID(p)
			}
		}
		if len(b.Succs) > 0 {
			bw.Succs = make([]int32, len(b.Succs))
			for j, s := range b.Succs {
				bw.Succs[j] = blockID(s)
			}
		}
		w.Blocks[i] = bw
	}
	w.Strs = strs.s
	return w, ix
}

// ImportFunc rebuilds a Func (and its Index) from wire form.
func ImportFunc(w *FuncWire) (*Func, *Index, error) {
	f := &Func{
		Name: w.Name, Ret: w.Ret, Unit: w.Unit, Pos: w.Pos,
		AuxIn: w.AuxIn, AuxOut: w.AuxOut,
		nextValID:   int(w.NextValID),
		nextInstrID: int(w.NextInstrID),
		nextBlockID: int(w.NextBlockID),
		intConsts:   make(map[int64]*Value),
	}
	ix := &Index{
		Values: make([]*Value, w.NextValID),
		Instrs: make([]*Instr, w.NextInstrID),
		Blocks: make([]*Block, w.NextBlockID),
	}
	value := func(id int32) (*Value, error) {
		if id == -1 {
			return nil, nil
		}
		if id < 0 || int(id) >= len(ix.Values) || ix.Values[id] == nil {
			return nil, fmt.Errorf("ir: import %s: bad value id %d", w.Name, id)
		}
		return ix.Values[id], nil
	}
	block := func(id int32) (*Block, error) {
		if id == -1 {
			return nil, nil
		}
		if id < 0 || int(id) >= len(ix.Blocks) || ix.Blocks[id] == nil {
			return nil, fmt.Errorf("ir: import %s: bad block id %d", w.Name, id)
		}
		return ix.Blocks[id], nil
	}
	str := func(id int32) (string, error) {
		if id == -1 {
			return "", nil
		}
		if id < 0 || int(id) >= len(w.Strs) {
			return "", fmt.Errorf("ir: import %s: bad string id %d", w.Name, id)
		}
		return w.Strs[id], nil
	}

	// Pass 1: values (Def wired in pass 3), restoring the intern tables.
	// Values are batch-allocated from one backing array — the artifact
	// lives or dies wholesale, and one allocation for thousands of nodes
	// is a large share of warm-restart time on the allocator alone.
	valArena := make([]Value, len(w.Values))
	for wi, vw := range w.Values {
		if vw.ID < 0 || int(vw.ID) >= len(ix.Values) || ix.Values[vw.ID] != nil {
			return nil, nil, fmt.Errorf("ir: import %s: bad value id %d", w.Name, vw.ID)
		}
		base, err := str(vw.TypeBase)
		if err != nil {
			return nil, nil, err
		}
		v := &valArena[wi]
		*v = Value{
			ID: int(vw.ID), Kind: vw.Kind, Name: vw.Name,
			Type:   minic.Type{Base: base, Ptr: int(vw.TypePtr)},
			IntVal: vw.IntVal, BoolVal: vw.BoolVal,
			ParamIdx: int(vw.ParamIdx), Aux: vw.Aux,
		}
		ix.Values[vw.ID] = v
		switch v.Kind {
		case VConstInt:
			f.intConsts[v.IntVal] = v
		case VConstBool:
			if v.BoolVal {
				f.boolConsts[1] = v
			} else {
				f.boolConsts[0] = v
			}
		case VConstNull:
			f.nullConst = v
		}
	}
	f.Params = make([]*Value, len(w.Params))
	for i, id := range w.Params {
		p, err := value(id)
		if err != nil || p == nil {
			return nil, nil, fmt.Errorf("ir: import %s: bad param id %d", w.Name, id)
		}
		f.Params[i] = p
	}

	// Pass 2: block shells, so instruction targets can resolve.
	blockArena := make([]Block, len(w.Blocks))
	f.Blocks = make([]*Block, len(w.Blocks))
	for i, bw := range w.Blocks {
		if bw.ID < 0 || int(bw.ID) >= len(ix.Blocks) || ix.Blocks[bw.ID] != nil {
			return nil, nil, fmt.Errorf("ir: import %s: bad block id %d", w.Name, bw.ID)
		}
		b := &blockArena[i]
		*b = Block{ID: int(bw.ID), Fn: f}
		ix.Blocks[bw.ID] = b
		f.Blocks[i] = b
	}

	// Pass 3: instructions, CFG edges, and value Defs. Instructions are
	// batch-allocated like values.
	nInstrs := 0
	for _, bw := range w.Blocks {
		nInstrs += len(bw.Instrs)
	}
	instrArena := make([]Instr, nInstrs)
	for i, bw := range w.Blocks {
		b := f.Blocks[i]
		b.Instrs = make([]*Instr, len(bw.Instrs))
		for j, iw := range bw.Instrs {
			if iw.ID < 0 || int(iw.ID) >= len(ix.Instrs) || ix.Instrs[iw.ID] != nil {
				return nil, nil, fmt.Errorf("ir: import %s: bad instr id %d", w.Name, iw.ID)
			}
			sub, err := str(iw.Sub)
			if err != nil {
				return nil, nil, err
			}
			callee, err := str(iw.Callee)
			if err != nil {
				return nil, nil, err
			}
			file, err := str(iw.PosFile)
			if err != nil {
				return nil, nil, err
			}
			in := &instrArena[0]
			instrArena = instrArena[1:]
			*in = Instr{
				ID: int(iw.ID), Op: iw.Op, Sub: sub, Callee: callee,
				Pos:   minic.Pos{File: file, Line: int(iw.PosLine), Col: int(iw.PosCol)},
				Block: b, Synthetic: iw.Synthetic,
			}
			if in.Dst, err = value(iw.Dst); err != nil {
				return nil, nil, err
			}
			if len(iw.Dsts) > 0 {
				in.Dsts = make([]*Value, len(iw.Dsts))
				for k, id := range iw.Dsts {
					if in.Dsts[k], err = value(id); err != nil {
						return nil, nil, err
					}
				}
			}
			if len(iw.Args) > 0 {
				in.Args = make([]*Value, len(iw.Args))
				for k, id := range iw.Args {
					if in.Args[k], err = value(id); err != nil {
						return nil, nil, err
					}
				}
			}
			if len(iw.Blocks) > 0 {
				in.Blocks = make([]*Block, len(iw.Blocks))
				for k, id := range iw.Blocks {
					if in.Blocks[k], err = block(id); err != nil {
						return nil, nil, err
					}
				}
			}
			ix.Instrs[iw.ID] = in
			b.Instrs[j] = in
		}
	}
	for i, bw := range w.Blocks {
		b := f.Blocks[i]
		var err error
		if len(bw.Preds) > 0 {
			b.Preds = make([]*Block, len(bw.Preds))
			for j, id := range bw.Preds {
				if b.Preds[j], err = block(id); err != nil {
					return nil, nil, err
				}
			}
		}
		if len(bw.Succs) > 0 {
			b.Succs = make([]*Block, len(bw.Succs))
			for j, id := range bw.Succs {
				if b.Succs[j], err = block(id); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	// Defs last: they reference instructions.
	for _, vw := range w.Values {
		if vw.Def == -1 {
			continue
		}
		if vw.Def < 0 || int(vw.Def) >= len(ix.Instrs) || ix.Instrs[vw.Def] == nil {
			return nil, nil, fmt.Errorf("ir: import %s: bad def id %d", w.Name, vw.Def)
		}
		ix.Values[vw.ID].Def = ix.Instrs[vw.Def]
	}
	var err error
	if f.Entry, err = block(w.Entry); err != nil {
		return nil, nil, err
	}
	if f.Exit, err = block(w.Exit); err != nil {
		return nil, nil, err
	}
	return f, ix, nil
}

// Binary codec for FuncWire: field-by-field wirebin encoding, in a fixed
// order Append and Decode must keep in lockstep. The artifact store bundles
// these blobs into segments; gob's reflective decode of this struct (the
// largest artifact section) dominated warm-restart time, and the linear
// scan here replaces it.

func appendValueWire(e *wirebin.Writer, v *ValueWire) {
	e.I32(v.ID)
	e.U8(uint8(v.Kind))
	e.Str(v.Name)
	e.I32(v.TypeBase)
	e.I32(v.TypePtr)
	e.I32(v.Def)
	e.Varint(v.IntVal)
	e.Bool(v.BoolVal)
	e.I32(v.ParamIdx)
	e.Bool(v.Aux)
}

func decodeValueWire(r *wirebin.Reader, v *ValueWire) {
	v.ID = r.I32()
	v.Kind = ValueKind(r.U8())
	v.Name = r.Str()
	v.TypeBase = r.I32()
	v.TypePtr = r.I32()
	v.Def = r.I32()
	v.IntVal = r.Varint()
	v.BoolVal = r.Bool()
	v.ParamIdx = r.I32()
	v.Aux = r.Bool()
}

func appendInstrWire(e *wirebin.Writer, in *InstrWire) {
	e.I32(in.ID)
	e.U8(uint8(in.Op))
	e.I32(in.Dst)
	e.I32s(in.Dsts)
	e.I32s(in.Args)
	e.I32(in.Sub)
	e.I32(in.Callee)
	e.I32s(in.Blocks)
	e.I32(in.PosFile)
	e.I32(in.PosLine)
	e.I32(in.PosCol)
	e.Bool(in.Synthetic)
}

func decodeInstrWire(r *wirebin.Reader, in *InstrWire) {
	in.ID = r.I32()
	in.Op = Op(r.U8())
	in.Dst = r.I32()
	in.Dsts = r.I32s()
	in.Args = r.I32s()
	in.Sub = r.I32()
	in.Callee = r.I32()
	in.Blocks = r.I32s()
	in.PosFile = r.I32()
	in.PosLine = r.I32()
	in.PosCol = r.I32()
	in.Synthetic = r.Bool()
}

func appendAuxSpecs(e *wirebin.Writer, specs []AuxSpec) {
	e.Uvarint(uint64(len(specs)))
	for _, a := range specs {
		e.Int(a.Root)
		e.Str(a.Global)
		e.Int(a.Depth)
	}
}

func decodeAuxSpecs(r *wirebin.Reader) []AuxSpec {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]AuxSpec, n)
	for i := range out {
		out[i] = AuxSpec{Root: r.Int(), Global: r.Str(), Depth: r.Int()}
	}
	return out
}

// AppendWire appends w's binary encoding to e.
func (w *FuncWire) AppendWire(e *wirebin.Writer) {
	e.Str(w.Name)
	e.Str(w.Ret.Base)
	e.Int(w.Ret.Ptr)
	e.I32s(w.Params)
	e.Strs(w.Strs)
	e.Uvarint(uint64(len(w.Values)))
	for i := range w.Values {
		appendValueWire(e, &w.Values[i])
	}
	e.Uvarint(uint64(len(w.Blocks)))
	for i := range w.Blocks {
		bw := &w.Blocks[i]
		e.I32(bw.ID)
		e.Uvarint(uint64(len(bw.Instrs)))
		for j := range bw.Instrs {
			appendInstrWire(e, &bw.Instrs[j])
		}
		e.I32s(bw.Preds)
		e.I32s(bw.Succs)
	}
	e.I32(w.Entry)
	e.I32(w.Exit)
	e.Int(w.Unit)
	e.Str(w.Pos.File)
	e.Int(w.Pos.Line)
	e.Int(w.Pos.Col)
	appendAuxSpecs(e, w.AuxIn)
	appendAuxSpecs(e, w.AuxOut)
	e.I32(w.NextValID)
	e.I32(w.NextInstrID)
	e.I32(w.NextBlockID)
}

// DecodeFuncWire reads one FuncWire from r.
func DecodeFuncWire(r *wirebin.Reader) (*FuncWire, error) {
	w := &FuncWire{}
	w.Name = r.Str()
	w.Ret.Base = r.Str()
	w.Ret.Ptr = r.Int()
	w.Params = r.I32s()
	w.Strs = r.Strs()
	if n := r.Len(); n > 0 {
		w.Values = make([]ValueWire, n)
		for i := range w.Values {
			decodeValueWire(r, &w.Values[i])
		}
	}
	if n := r.Len(); n > 0 {
		w.Blocks = make([]BlockWire, n)
		for i := range w.Blocks {
			bw := &w.Blocks[i]
			bw.ID = r.I32()
			if m := r.Len(); m > 0 {
				bw.Instrs = make([]InstrWire, m)
				for j := range bw.Instrs {
					decodeInstrWire(r, &bw.Instrs[j])
				}
			}
			bw.Preds = r.I32s()
			bw.Succs = r.I32s()
		}
	}
	w.Entry = r.I32()
	w.Exit = r.I32()
	w.Unit = r.Int()
	w.Pos.File = r.Str()
	w.Pos.Line = r.Int()
	w.Pos.Col = r.Int()
	w.AuxIn = decodeAuxSpecs(r)
	w.AuxOut = decodeAuxSpecs(r)
	w.NextValID = r.I32()
	w.NextInstrID = r.I32()
	w.NextBlockID = r.I32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ir: decode func wire: %w", err)
	}
	return w, nil
}
