package ir

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

// buildDiamond constructs a small valid function by hand:
//
//	b0: br c b1 b2
//	b1: x = 1; jmp b3
//	b2: x = 2; jmp b3
//	b3: ret x
func buildDiamond() *Func {
	f := NewFunc("f", minic.IntType, 0, minic.Pos{})
	c := f.NewParam("c", minic.BoolType, false)
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry, f.Exit = b0, b3
	x := f.NewVar("x", minic.IntType)

	f.Append(b0, Instr{Op: OpBr, Args: []*Value{c}, Blocks: []*Block{b1, b2}})
	Connect(b0, b1)
	Connect(b0, b2)
	f.Append(b1, Instr{Op: OpCopy, Dst: x, Args: []*Value{f.ConstInt(1)}})
	f.Append(b1, Instr{Op: OpJmp, Blocks: []*Block{b3}})
	Connect(b1, b3)
	f.Append(b2, Instr{Op: OpCopy, Dst: x, Args: []*Value{f.ConstInt(2)}})
	f.Append(b2, Instr{Op: OpJmp, Blocks: []*Block{b3}})
	Connect(b2, b3)
	f.Append(b3, Instr{Op: OpRet, Args: []*Value{x}})
	return f
}

func TestVerifyAcceptsValid(t *testing.T) {
	if err := Verify(buildDiamond()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsMissingTerminator(t *testing.T) {
	f := buildDiamond()
	b := f.Blocks[1]
	b.Instrs = b.Instrs[:1] // drop the jmp
	if err := Verify(f); err == nil {
		t.Fatal("missing terminator accepted")
	}
}

func TestVerifyRejectsEdgeMismatch(t *testing.T) {
	f := buildDiamond()
	// Remove a recorded successor without touching the terminator.
	f.Blocks[0].Succs = f.Blocks[0].Succs[:1]
	if err := Verify(f); err == nil {
		t.Fatal("succ mismatch accepted")
	}
}

func TestVerifyRejectsBadArity(t *testing.T) {
	f := NewFunc("g", minic.VoidType, 0, minic.Pos{})
	b := f.NewBlock()
	f.Entry, f.Exit = b, b
	// A load with no destination.
	f.Append(b, Instr{Op: OpLoad, Args: []*Value{f.ConstInt(0)}})
	f.Append(b, Instr{Op: OpRet})
	if err := Verify(f); err == nil {
		t.Fatal("bad arity accepted")
	}
}

func TestVerifyPhiInvariants(t *testing.T) {
	f := buildDiamond()
	b3 := f.Blocks[3]
	x2 := f.NewVar("x2", minic.IntType)
	// Phi with one arg but two preds: must be rejected.
	f.InsertAt(b3, 0, Instr{Op: OpPhi, Dst: x2, Args: []*Value{f.ConstInt(1)}, Blocks: []*Block{f.Blocks[1]}})
	if err := Verify(f); err == nil {
		t.Fatal("phi arity mismatch accepted")
	}
}

func TestConstInterning(t *testing.T) {
	f := NewFunc("h", minic.VoidType, 0, minic.Pos{})
	if f.ConstInt(7) != f.ConstInt(7) {
		t.Error("int consts not interned")
	}
	if f.ConstBool(true) != f.ConstBool(true) || f.ConstBool(true) == f.ConstBool(false) {
		t.Error("bool consts broken")
	}
	if f.ConstNull() != f.ConstNull() {
		t.Error("null const not interned")
	}
	if !f.ConstNull().IsConst() || f.NewVar("v", minic.IntType).IsConst() {
		t.Error("IsConst wrong")
	}
}

func TestPrinting(t *testing.T) {
	f := buildDiamond()
	s := f.String()
	for _, frag := range []string{"func f", "br c b1 b2", "x = 1", "ret x", "preds=[b1 b2]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("print missing %q:\n%s", frag, s)
		}
	}
}

func TestInstrDefs(t *testing.T) {
	f := NewFunc("k", minic.VoidType, 0, minic.Pos{})
	b := f.NewBlock()
	f.Entry, f.Exit = b, b
	d1, d2 := f.NewVar("d1", minic.IntType), f.NewVar("d2", minic.IntType)
	call := f.Append(b, Instr{Op: OpCall, Callee: "g", Dsts: []*Value{d1, nil, d2}})
	defs := call.Defs()
	if len(defs) != 2 || defs[0] != d1 || defs[1] != d2 {
		t.Fatalf("Defs = %v", defs)
	}
}

func TestModuleLineCount(t *testing.T) {
	m := NewModule()
	f := buildDiamond()
	m.AddFunc(f)
	if m.LineCount() != f.NumInstrs() {
		t.Errorf("LineCount = %d, want %d", m.LineCount(), f.NumInstrs())
	}
	if m.ByName["f"] != f {
		t.Error("ByName broken")
	}
}

func TestDotCFG(t *testing.T) {
	s := DotCFG(buildDiamond())
	for _, frag := range []string{"digraph", "b0 -> b1", "label=\"T\"", "label=\"F\"", "b2 -> b3"} {
		if !strings.Contains(s, frag) {
			t.Errorf("dot missing %q:\n%s", frag, s)
		}
	}
}

func TestAuxSpecString(t *testing.T) {
	p := AuxSpec{Root: 0, Depth: 2}
	g := AuxSpec{Root: -1, Global: "g", Depth: 1}
	if p.String() != "*(p0,2)" || g.String() != "*(@g,1)" {
		t.Errorf("specs render %q / %q", p, g)
	}
}

func TestPrintAllInstructionForms(t *testing.T) {
	f := NewFunc("all", minic.IntType, 0, minic.Pos{})
	b := f.NewBlock()
	f.Entry, f.Exit = b, b
	p := f.NewParam("p", minic.IntType.Pointer(), false)
	v := func(name string) *Value { return f.NewVar(name, minic.IntType) }
	pv := func(name string) *Value { return f.NewVar(name, minic.IntType.Pointer()) }

	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpCopy, Dst: v("a"), Args: []*Value{f.ConstInt(1)}}, "a = 1"},
		{Instr{Op: OpBin, Dst: v("b"), Sub: "+", Args: []*Value{f.ConstInt(1), f.ConstInt(2)}}, "b = 1 + 2"},
		{Instr{Op: OpUn, Dst: v("c"), Sub: "-", Args: []*Value{f.ConstInt(3)}}, "c = -3"},
		{Instr{Op: OpLoad, Dst: v("d"), Args: []*Value{p}}, "d = *p"},
		{Instr{Op: OpStore, Args: []*Value{p, f.ConstInt(4)}}, "*p = 4"},
		{Instr{Op: OpAlloc, Dst: pv("e"), Sub: "x"}, "e = alloc x"},
		{Instr{Op: OpMalloc, Dst: pv("g")}, "g = malloc"},
		{Instr{Op: OpFree, Args: []*Value{p}}, "free p"},
		{Instr{Op: OpGlobalAddr, Dst: pv("h"), Sub: "gv"}, "h = &@gv"},
		{Instr{Op: OpCall, Callee: "fn", Dsts: []*Value{v("i"), nil, v("j")}, Args: []*Value{p}}, "i, _, j = call fn(p)"},
	}
	for _, c := range cases {
		got := c.in.String()
		if got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	// Phi rendering.
	b2 := f.NewBlock()
	phi := Instr{Op: OpPhi, Dst: v("k"), Args: []*Value{f.ConstInt(1), f.ConstInt(2)}, Blocks: []*Block{b, b2}}
	if s := phi.String(); !strings.Contains(s, "phi(") || !strings.Contains(s, "b0:1") {
		t.Errorf("phi render = %q", s)
	}
}

func TestValueStringForms(t *testing.T) {
	f := NewFunc("vals", minic.VoidType, 0, minic.Pos{})
	if f.ConstInt(5).String() != "5" || f.ConstBool(true).String() != "true" ||
		f.ConstBool(false).String() != "false" || f.ConstNull().String() != "null" {
		t.Error("const rendering broken")
	}
	if f.NewVar("vv", minic.IntType).String() != "vv" {
		t.Error("var rendering broken")
	}
}
