// Package ir defines the intermediate representation the analysis runs on.
//
// The IR matches the abstract language of Pinpoint §3: common assignments,
// φ-assignments, binary/unary operations, loads and stores through pointers,
// branches, calls, and returns. Programs are lowered from MiniC ASTs by
// package lower, put into SSA form by package ssa, and then transformed by
// package transform to expose side effects through Aux formal parameters and
// Aux return values (the "connector model", Figure 3 of the paper).
//
// Functions may have multiple return operands and calls multiple receivers;
// pre-transformation code uses only the first slot, the connector
// transformation appends the aux slots.
package ir

import (
	"fmt"

	"repro/internal/minic"
)

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpCopy: Dst = Args[0].
	OpCopy Op = iota
	// OpBin: Dst = Args[0] <Sub> Args[1].
	OpBin
	// OpUn: Dst = <Sub> Args[0].
	OpUn
	// OpPhi: Dst = φ(Args...); Blocks lists the incoming predecessor of
	// each argument, parallel to Args.
	OpPhi
	// OpLoad: Dst = *Args[0].
	OpLoad
	// OpStore: *Args[0] = Args[1].
	OpStore
	// OpAlloc: Dst = address of a fresh stack slot (an address-taken
	// local). Sub holds the source variable name.
	OpAlloc
	// OpMalloc: Dst = address of a fresh heap object.
	OpMalloc
	// OpFree: free(Args[0]).
	OpFree
	// OpCall: Dsts = call Callee(Args...). Dsts[0] receives the source
	// return value (nil slot for void); Dsts[1:] receive aux return
	// values after the connector transformation.
	OpCall
	// OpBr: if Args[0] goto Blocks[0] else Blocks[1]. Terminator.
	OpBr
	// OpJmp: goto Blocks[0]. Terminator.
	OpJmp
	// OpRet: return Args... (Args[0] is the source return value; it is
	// absent entirely for void functions before transformation).
	// Terminator.
	OpRet
	// OpGlobalAddr: Dst = address of global Sub.
	OpGlobalAddr
	// OpFieldAddr: Dst = address of field Sub within the struct object
	// pointed to by Args[0].
	OpFieldAddr
)

var opNames = [...]string{
	OpCopy: "copy", OpBin: "bin", OpUn: "un", OpPhi: "phi", OpLoad: "load",
	OpStore: "store", OpAlloc: "alloc", OpMalloc: "malloc", OpFree: "free",
	OpCall: "call", OpBr: "br", OpJmp: "jmp", OpRet: "ret", OpGlobalAddr: "gaddr",
	OpFieldAddr: "fieldaddr",
}

func (o Op) String() string { return opNames[o] }

// ValueKind discriminates Value forms.
type ValueKind uint8

const (
	// VVar is a variable (pre-SSA: a named slot assigned possibly many
	// times; post-SSA: a single-assignment version).
	VVar ValueKind = iota
	// VParam is a function formal parameter (single assignment).
	VParam
	// VConstInt is an integer constant.
	VConstInt
	// VConstBool is a boolean constant.
	VConstBool
	// VConstNull is the null pointer constant.
	VConstNull
)

// Value is an IR value: a variable, parameter, or constant. Variables and
// parameters are identified by pointer; constants are interned per function.
type Value struct {
	ID   int
	Kind ValueKind
	Name string
	Type minic.Type
	// Def is the defining instruction of an SSA variable (nil for
	// parameters and constants).
	Def *Instr
	// IntVal / BoolVal hold constant payloads.
	IntVal  int64
	BoolVal bool
	// ParamIdx is the 0-based position of a VParam, including aux formal
	// parameters appended by the connector transformation.
	ParamIdx int
	// Aux marks connector values introduced by the transformation: aux
	// formal parameters (VParam) and aux return values.
	Aux bool
}

// IsConst reports whether v is a constant of any kind.
func (v *Value) IsConst() bool {
	return v.Kind == VConstInt || v.Kind == VConstBool || v.Kind == VConstNull
}

func (v *Value) String() string {
	switch v.Kind {
	case VConstInt:
		return fmt.Sprintf("%d", v.IntVal)
	case VConstBool:
		if v.BoolVal {
			return "true"
		}
		return "false"
	case VConstNull:
		return "null"
	default:
		return v.Name
	}
}

// Instr is one IR instruction. Instructions are identified by pointer; ID is
// unique within the enclosing function and serves as the statement label s in
// the paper's v@s vertices.
type Instr struct {
	ID     int
	Op     Op
	Dst    *Value
	Dsts   []*Value // call receivers; Dsts[0] may be nil for void calls
	Args   []*Value
	Sub    string   // operator for OpBin/OpUn, var name for OpAlloc/OpGlobalAddr
	Callee string   // for OpCall
	Blocks []*Block // successors (OpBr/OpJmp) or phi predecessors (OpPhi)
	Pos    minic.Pos
	Block  *Block
	// Synthetic marks connector glue inserted by the transformation
	// (entry stores, exit loads, call-site load/store chains). Checkers
	// skip synthetic dereferences: they model a callee's accesses, which
	// are reported at their real site inside the callee.
	Synthetic bool
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpJmp || in.Op == OpRet
}

// Defs returns all values defined by the instruction.
func (in *Instr) Defs() []*Value {
	if in.Op == OpCall {
		var out []*Value
		for _, d := range in.Dsts {
			if d != nil {
				out = append(out, d)
			}
		}
		return out
	}
	if in.Dst != nil {
		return []*Value{in.Dst}
	}
	return nil
}

// Block is a basic block. The last instruction is the terminator.
type Block struct {
	ID     int
	Fn     *Func
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block
}

// Term returns the block's terminator, or nil if the block is still open.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.IsTerminator() {
		return last
	}
	return nil
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// AuxSpec describes one connector: an access path *(root, depth) rooted at a
// formal parameter or a global (§3.1.2, Definition 3.1).
type AuxSpec struct {
	// Root identifies the access-path root: a parameter index >= 0, or
	// -1 with Global set.
	Root   int
	Global string
	// Depth is the dereference level k >= 1.
	Depth int
}

func (a AuxSpec) String() string {
	if a.Root >= 0 {
		return fmt.Sprintf("*(p%d,%d)", a.Root, a.Depth)
	}
	return fmt.Sprintf("*(@%s,%d)", a.Global, a.Depth)
}

// Func is one IR function.
type Func struct {
	Name   string
	Ret    minic.Type
	Params []*Value
	Blocks []*Block
	Entry  *Block
	// Exit is the unique return block (lowering normalizes functions to
	// a single return).
	Exit *Block
	Unit int // compilation unit index
	Pos  minic.Pos

	// AuxIn / AuxOut describe the connector slots appended to Params and
	// to the return operand list by the transformation, in order.
	AuxIn  []AuxSpec
	AuxOut []AuxSpec

	nextValID   int
	nextInstrID int
	nextBlockID int
	intConsts   map[int64]*Value
	boolConsts  [2]*Value
	nullConst   *Value
}

// NewFunc returns an empty function shell.
func NewFunc(name string, ret minic.Type, unit int, pos minic.Pos) *Func {
	return &Func{
		Name: name, Ret: ret, Unit: unit, Pos: pos,
		intConsts: make(map[int64]*Value),
	}
}

// NewBlock appends a fresh empty block to the function.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlockID, Fn: f}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewVar creates a fresh variable value.
func (f *Func) NewVar(name string, t minic.Type) *Value {
	v := &Value{ID: f.nextValID, Kind: VVar, Name: name, Type: t}
	f.nextValID++
	return v
}

// NewParam creates and appends a formal parameter.
func (f *Func) NewParam(name string, t minic.Type, aux bool) *Value {
	v := &Value{
		ID: f.nextValID, Kind: VParam, Name: name, Type: t,
		ParamIdx: len(f.Params), Aux: aux,
	}
	f.nextValID++
	f.Params = append(f.Params, v)
	return v
}

// ConstInt returns the interned integer constant.
func (f *Func) ConstInt(v int64) *Value {
	if c, ok := f.intConsts[v]; ok {
		return c
	}
	c := &Value{ID: f.nextValID, Kind: VConstInt, IntVal: v, Type: minic.IntType}
	f.nextValID++
	f.intConsts[v] = c
	return c
}

// ConstBool returns the interned boolean constant.
func (f *Func) ConstBool(v bool) *Value {
	i := 0
	if v {
		i = 1
	}
	if f.boolConsts[i] == nil {
		f.boolConsts[i] = &Value{ID: f.nextValID, Kind: VConstBool, BoolVal: v, Type: minic.BoolType}
		f.nextValID++
	}
	return f.boolConsts[i]
}

// ConstNull returns the interned null constant.
func (f *Func) ConstNull() *Value {
	if f.nullConst == nil {
		f.nullConst = &Value{ID: f.nextValID, Kind: VConstNull, Type: minic.IntType.Pointer()}
		f.nextValID++
	}
	return f.nullConst
}

// NumValues returns the number of values created so far.
func (f *Func) NumValues() int { return f.nextValID }

// NumInstrs returns the number of instructions created so far.
func (f *Func) NumInstrs() int { return f.nextInstrID }

// Append creates an instruction and appends it to block b.
func (f *Func) Append(b *Block, in Instr) *Instr {
	p := new(Instr)
	*p = in
	p.ID = f.nextInstrID
	f.nextInstrID++
	p.Block = b
	b.Instrs = append(b.Instrs, p)
	return p
}

// InsertAt creates an instruction and inserts it at index i within block b.
func (f *Func) InsertAt(b *Block, i int, in Instr) *Instr {
	p := new(Instr)
	*p = in
	p.ID = f.nextInstrID
	f.nextInstrID++
	p.Block = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = p
	return p
}

// Connect records a CFG edge from a to b.
func Connect(a, b *Block) {
	a.Succs = append(a.Succs, b)
	b.Preds = append(b.Preds, a)
}

// Module is a whole program.
type Module struct {
	Funcs        []*Func
	ByName       map[string]*Func
	Globals      []*Global
	GlobalByName map[string]*Global
	// Units is the number of compilation units in the source program.
	Units int
}

// Global is a program-level variable.
type Global struct {
	Name string
	Type minic.Type
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{
		ByName:       make(map[string]*Func),
		GlobalByName: make(map[string]*Global),
	}
}

// AddFunc registers a function in the module.
func (m *Module) AddFunc(f *Func) {
	m.Funcs = append(m.Funcs, f)
	m.ByName[f.Name] = f
}

// AddGlobal registers a global variable.
func (m *Module) AddGlobal(g *Global) {
	m.Globals = append(m.Globals, g)
	m.GlobalByName[g.Name] = g
}

// LineCount returns the total instruction count of the module, the size
// metric used when the harness reports analyzed "lines".
func (m *Module) LineCount() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}
