package ir

import "fmt"

// Verify checks structural invariants of a function:
//
//   - every block ends in exactly one terminator, which is its last
//     instruction;
//   - CFG edges recorded in terminators match Preds/Succs;
//   - phi argument lists are parallel to their predecessor lists and cover
//     exactly the block's predecessors;
//   - instruction operand/destination arity matches the opcode;
//   - every instruction knows its enclosing block.
//
// It returns the first violation found, or nil.
func Verify(f *Func) error {
	if f.Entry == nil {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s/%s: empty block", f.Name, b)
		}
		for i, in := range b.Instrs {
			if in.Block != b {
				return fmt.Errorf("%s/%s: instr %d has wrong Block link", f.Name, b, i)
			}
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				return fmt.Errorf("%s/%s: terminator placement wrong at instr %d (%s)", f.Name, b, i, in)
			}
			if err := verifyArity(in); err != nil {
				return fmt.Errorf("%s/%s: %v", f.Name, b, err)
			}
			if in.Op == OpPhi {
				if len(in.Args) != len(in.Blocks) {
					return fmt.Errorf("%s/%s: phi args/blocks mismatch", f.Name, b)
				}
				if len(in.Args) != len(b.Preds) {
					return fmt.Errorf("%s/%s: phi has %d args, block has %d preds", f.Name, b, len(in.Args), len(b.Preds))
				}
				for _, pb := range in.Blocks {
					if !containsBlock(b.Preds, pb) {
						return fmt.Errorf("%s/%s: phi names non-pred %s", f.Name, b, pb)
					}
				}
			}
		}
		term := b.Term()
		var want []*Block
		switch term.Op {
		case OpBr, OpJmp:
			want = term.Blocks
		case OpRet:
			want = nil
		}
		if len(want) != len(b.Succs) {
			return fmt.Errorf("%s/%s: %d terminator targets, %d succs", f.Name, b, len(want), len(b.Succs))
		}
		for _, s := range want {
			if !containsBlock(b.Succs, s) {
				return fmt.Errorf("%s/%s: terminator target %s not in succs", f.Name, b, s)
			}
			if !containsBlock(s.Preds, b) {
				return fmt.Errorf("%s/%s: %s missing back edge in preds", f.Name, b, s)
			}
		}
	}
	return nil
}

func verifyArity(in *Instr) error {
	bad := func() error {
		return fmt.Errorf("bad arity for %s: %s", in.Op, in)
	}
	switch in.Op {
	case OpCopy, OpLoad, OpUn:
		if in.Dst == nil || len(in.Args) != 1 {
			return bad()
		}
	case OpBin:
		if in.Dst == nil || len(in.Args) != 2 || in.Sub == "" {
			return bad()
		}
	case OpStore:
		if len(in.Args) != 2 {
			return bad()
		}
	case OpAlloc, OpMalloc, OpGlobalAddr:
		if in.Dst == nil || len(in.Args) != 0 {
			return bad()
		}
	case OpFieldAddr:
		if in.Dst == nil || len(in.Args) != 1 || in.Sub == "" {
			return bad()
		}
	case OpFree:
		if len(in.Args) != 1 {
			return bad()
		}
	case OpCall:
		if in.Callee == "" {
			return bad()
		}
	case OpBr:
		if len(in.Args) != 1 || len(in.Blocks) != 2 {
			return bad()
		}
	case OpJmp:
		if len(in.Blocks) != 1 {
			return bad()
		}
	case OpRet:
		// any arity
	case OpPhi:
		if in.Dst == nil || len(in.Args) == 0 {
			return bad()
		}
	}
	return nil
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// VerifyModule runs Verify over every function.
func VerifyModule(m *Module) error {
	for _, f := range m.Funcs {
		if err := Verify(f); err != nil {
			return err
		}
	}
	return nil
}
