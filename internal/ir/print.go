package ir

import (
	"fmt"
	"strings"
)

// String renders an instruction in a compact textual form, e.g.
// "x2 = load p1" or "br c0 b1 b2".
func (in *Instr) String() string {
	var b strings.Builder
	switch in.Op {
	case OpCopy:
		fmt.Fprintf(&b, "%s = %s", in.Dst, in.Args[0])
	case OpBin:
		fmt.Fprintf(&b, "%s = %s %s %s", in.Dst, in.Args[0], in.Sub, in.Args[1])
	case OpUn:
		fmt.Fprintf(&b, "%s = %s%s", in.Dst, in.Sub, in.Args[0])
	case OpPhi:
		fmt.Fprintf(&b, "%s = phi(", in.Dst)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s:%s", in.Blocks[i], a)
		}
		b.WriteString(")")
	case OpLoad:
		fmt.Fprintf(&b, "%s = *%s", in.Dst, in.Args[0])
	case OpStore:
		fmt.Fprintf(&b, "*%s = %s", in.Args[0], in.Args[1])
	case OpAlloc:
		fmt.Fprintf(&b, "%s = alloc %s", in.Dst, in.Sub)
	case OpMalloc:
		fmt.Fprintf(&b, "%s = malloc", in.Dst)
	case OpFree:
		fmt.Fprintf(&b, "free %s", in.Args[0])
	case OpGlobalAddr:
		fmt.Fprintf(&b, "%s = &@%s", in.Dst, in.Sub)
	case OpFieldAddr:
		fmt.Fprintf(&b, "%s = &%s->%s", in.Dst, in.Args[0], in.Sub)
	case OpCall:
		var dsts []string
		for _, d := range in.Dsts {
			if d == nil {
				dsts = append(dsts, "_")
			} else {
				dsts = append(dsts, d.String())
			}
		}
		if len(dsts) > 0 {
			fmt.Fprintf(&b, "%s = ", strings.Join(dsts, ", "))
		}
		fmt.Fprintf(&b, "call %s(", in.Callee)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	case OpBr:
		fmt.Fprintf(&b, "br %s %s %s", in.Args[0], in.Blocks[0], in.Blocks[1])
	case OpJmp:
		fmt.Fprintf(&b, "jmp %s", in.Blocks[0])
	case OpRet:
		b.WriteString("ret")
		for _, a := range in.Args {
			b.WriteString(" ")
			b.WriteString(a.String())
		}
	}
	return b.String()
}

// String renders the whole function as text.
func (f *Func) String() string {
	var b strings.Builder
	var params []string
	for _, p := range f.Params {
		mark := ""
		if p.Aux {
			mark = "~"
		}
		params = append(params, fmt.Sprintf("%s%s %s", mark, p.Type, p.Name))
	}
	fmt.Fprintf(&b, "func %s(%s) %s {\n", f.Name, strings.Join(params, ", "), f.Ret)
	for _, blk := range f.Blocks {
		var preds []string
		for _, p := range blk.Preds {
			preds = append(preds, p.String())
		}
		fmt.Fprintf(&b, "%s: ; preds=[%s]\n", blk, strings.Join(preds, " "))
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the whole module.
func (m *Module) String() string {
	var b strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global %s @%s\n", g.Type, g.Name)
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}
