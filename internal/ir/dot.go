package ir

import (
	"fmt"
	"strings"
)

// DotCFG renders the function's control-flow graph in Graphviz DOT syntax,
// one record node per basic block. Branch edges are labeled T/F.
func DotCFG(f *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", "cfg_"+f.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=9];\n")
	for _, blk := range f.Blocks {
		var lines []string
		lines = append(lines, blk.String()+":")
		for _, in := range blk.Instrs {
			lines = append(lines, "  "+in.String())
		}
		fmt.Fprintf(&b, "  %s [label=%q];\n", blk, strings.Join(lines, "\\l")+"\\l")
	}
	for _, blk := range f.Blocks {
		term := blk.Term()
		if term == nil {
			continue
		}
		switch term.Op {
		case OpBr:
			fmt.Fprintf(&b, "  %s -> %s [label=\"T\"];\n", blk, term.Blocks[0])
			fmt.Fprintf(&b, "  %s -> %s [label=\"F\"];\n", blk, term.Blocks[1])
		case OpJmp:
			fmt.Fprintf(&b, "  %s -> %s;\n", blk, term.Blocks[0])
		}
	}
	b.WriteString("}\n")
	return b.String()
}
