package difftest

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestGenerateParses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p := Generate(rng)
		if _, err := Compare(p); err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
	}
}

// TestDifferential cross-validates the static analysis against exhaustive
// concrete execution on 200 random programs. On this grammar the analysis
// must be exact: no false negatives AND no false positives.
func TestDifferential(t *testing.T) {
	const n = 200
	bad, err := RunMany(42, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		kind := "FALSE NEGATIVE (triggerable bug missed)"
		extra := fmt.Sprintf("trigger mask %b", v.TriggerMask)
		if v.AnalysisBug && !v.TruthBug {
			kind = "FALSE POSITIVE (untriggerable report)"
			extra = ""
		}
		t.Errorf("%s %s\n%s", kind, extra, v.Program.Src)
	}
	if len(bad) > 0 {
		t.Fatalf("%d/%d disagreements", len(bad), n)
	}
}

// TestDifferentialOtherSeeds widens coverage across seeds (kept small so
// the suite stays fast; bump counts locally for soak runs).
func TestDifferentialOtherSeeds(t *testing.T) {
	for _, seed := range []int64{7, 1234, 99991} {
		bad, err := RunMany(seed, 60)
		if err != nil {
			t.Fatal(err)
		}
		if len(bad) > 0 {
			t.Fatalf("seed %d: %d disagreements; first:\n%s", seed, len(bad), bad[0].Program.Src)
		}
	}
}
