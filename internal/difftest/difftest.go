// Package difftest cross-validates the static analysis against concrete
// execution. It generates small random MiniC programs from a restricted
// grammar — branch conditions depend only on the entry function's boolean
// parameters — so ground truth is computable exactly: enumerate all 2^k
// parameter assignments, execute each with the interpreter, and record
// whether any execution triggers a use-after-free or double-free.
//
// On this program class Pinpoint is expected to be *exact*: the SMT path
// conditions decide parameter-only guards completely, the happens-after
// check matches CFG order, and the call depths stay within budget. Any
// divergence — a missed triggerable bug or a report nothing can trigger —
// is a real defect in the analysis (or the interpreter) and the test
// prints the offending program.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/interp"
	"repro/internal/minic"
)

// Program is one generated test case.
type Program struct {
	Src    string
	Params int // boolean parameters of entry
}

// condExpr renders a random guard over the boolean parameters.
func condExpr(rng *rand.Rand, params int) string {
	p := func() string { return fmt.Sprintf("c%d", rng.Intn(params)) }
	switch rng.Intn(4) {
	case 0:
		return p()
	case 1:
		return "!" + p()
	case 2:
		return p() + " && " + p()
	default:
		return p() + " || " + p()
	}
}

// Generate builds one random program. The grammar:
//
//   - 2-3 malloc'd pointers plus up to one alias per pointer;
//   - 4-10 statements: conditional/unconditional frees, dereferences,
//     and calls to generated helpers that free or dereference their
//     argument;
//   - all conditions over entry's boolean parameters only.
func Generate(rng *rand.Rand) Program {
	params := 1 + rng.Intn(3)
	nPtrs := 2 + rng.Intn(2)

	var b strings.Builder
	helpers := 0
	b.WriteString("struct Cell { int *ca; int *cb; };\n")

	var body []string
	ptr := func() string { return fmt.Sprintf("p%d", rng.Intn(nPtrs)) }

	nStmts := 4 + rng.Intn(7)
	for i := 0; i < nStmts; i++ {
		target := ptr()
		var action string
		switch rng.Intn(9) {
		case 8:
			// Route through a struct field and dereference.
			field := "ca"
			if rng.Intn(2) == 0 {
				field = "cb"
			}
			action = fmt.Sprintf("struct Cell *t%d = malloc(); t%d->%s = %s; int *f%d = t%d->%s; int n%d = *f%d; keep(n%d);",
				i, i, field, target, i, i, field, i, i, i)
		case 6:
			// Route the pointer through heap memory, then dereference.
			action = fmt.Sprintf("int **s%d = malloc(); *s%d = %s; int *l%d = *s%d; int m%d = *l%d; keep(m%d);",
				i, i, target, i, i, i, i, i)
		case 7:
			// A helper that frees only under its own boolean argument.
			helpers++
			fmt.Fprintf(&b, "void hcfree%d(int *x, bool g) { if (g) { free(x); } }\n", helpers)
			action = fmt.Sprintf("hcfree%d(%s, %s);", helpers, target, fmt.Sprintf("c%d", rng.Intn(params)))
		case 0:
			action = fmt.Sprintf("free(%s);", target)
		case 1:
			action = fmt.Sprintf("int v%d = *%s; keep(v%d);", i, target, i)
		case 2:
			helpers++
			fmt.Fprintf(&b, "void hfree%d(int *x) { free(x); }\n", helpers)
			action = fmt.Sprintf("hfree%d(%s);", helpers, target)
		case 3:
			helpers++
			fmt.Fprintf(&b, "void huse%d(int *x) { int v = *x; keep(v); }\n", helpers)
			action = fmt.Sprintf("huse%d(%s);", helpers, target)
		case 4:
			// Alias then use the alias.
			action = fmt.Sprintf("int *a%d = %s; int w%d = *a%d; keep(w%d);", i, target, i, i, i)
		default:
			helpers++
			fmt.Fprintf(&b, "int *hid%d(int *x) { return x; }\n", helpers)
			action = fmt.Sprintf("int *r%d = hid%d(%s); int u%d = *r%d; keep(u%d);", i, helpers, target, i, i, i)
		}
		if rng.Intn(3) > 0 {
			body = append(body, fmt.Sprintf("\tif (%s) { %s }", condExpr(rng, params), action))
		} else {
			body = append(body, "\t"+action)
		}
	}

	var sig []string
	for i := 0; i < params; i++ {
		sig = append(sig, fmt.Sprintf("bool c%d", i))
	}
	fmt.Fprintf(&b, "void entry(%s) {\n", strings.Join(sig, ", "))
	for i := 0; i < nPtrs; i++ {
		fmt.Fprintf(&b, "\tint *p%d = malloc();\n", i)
	}
	for _, s := range body {
		b.WriteString(s + "\n")
	}
	b.WriteString("}\n")
	return Program{Src: b.String(), Params: params}
}

// Verdict is one comparison outcome.
type Verdict struct {
	Program Program
	// AnalysisBug: the UAF checker reported at least one warning.
	AnalysisBug bool
	// TruthBug: some parameter assignment triggers a UAF or double-free.
	TruthBug bool
	// TriggerMask is the first triggering assignment (valid if TruthBug).
	TriggerMask uint
}

// Agrees reports soundness+exactness agreement.
func (v Verdict) Agrees() bool { return v.AnalysisBug == v.TruthBug }

// Compare computes both verdicts for one program.
func Compare(p Program) (Verdict, error) {
	v := Verdict{Program: p}
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "diff.mc", Src: p.Src}})
	if err != nil {
		return v, fmt.Errorf("parse: %w\n%s", err, p.Src)
	}

	// Ground truth: every assignment of the boolean parameters.
	for mask := uint(0); mask < 1<<p.Params; mask++ {
		args := make([]interp.Value, p.Params)
		for i := 0; i < p.Params; i++ {
			args[i] = interp.BoolV(mask&(1<<i) != 0)
		}
		res, err := interp.Run(prog, "entry", args, interp.Options{})
		if err != nil {
			return v, fmt.Errorf("interp mask=%b: %w\n%s", mask, err, p.Src)
		}
		if res.Has(interp.EvUseAfterFree) || res.Has(interp.EvDoubleFree) {
			v.TruthBug = true
			v.TriggerMask = mask
			break
		}
	}

	// Static verdict.
	a, err := core.BuildFromSource([]minic.NamedSource{{Name: "diff.mc", Src: p.Src}}, core.BuildOptions{})
	if err != nil {
		return v, fmt.Errorf("build: %w\n%s", err, p.Src)
	}
	reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
	v.AnalysisBug = len(reports) > 0
	return v, nil
}

// RunMany generates and compares n programs with the given seed; it
// returns all disagreements.
func RunMany(seed int64, n int) ([]Verdict, error) {
	rng := rand.New(rand.NewSource(seed))
	var bad []Verdict
	for i := 0; i < n; i++ {
		p := Generate(rng)
		v, err := Compare(p)
		if err != nil {
			return bad, err
		}
		if !v.Agrees() {
			bad = append(bad, v)
		}
	}
	return bad, nil
}
