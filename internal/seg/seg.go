// Package seg builds the Symbolic Expression Graph of Pinpoint §3.2 — the
// per-function sparse value-flow graph that compactly encodes conditional
// data dependence and control dependence, and supports querying "efficient
// path conditions" (Definition 3.2, Equation 1).
//
// Nodes are SSA value definitions plus use vertices at statements the
// checkers care about (dereference addresses, call arguments, free
// operands, return operands). Forward edges carry the condition under which
// the value flows:
//
//   - copies and operator results flow unconditionally;
//   - φ operands flow under their gate conditions;
//   - memory flows (store → load) come from the quasi path-sensitive
//     points-to analysis with their guards — this is where the "pointer
//     trap" is dodged: the edges are built from cheap local reasoning, yet
//     carry conditions precise enough for full path-sensitivity later.
//
// Control dependence is not materialized as edges; it is recovered from
// ssa.Info (package cfg) when path conditions are assembled, which keeps
// the graph small (the paper's Lc labels are exactly cfg.ControlDeps).
package seg

import (
	"fmt"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/pta"
	"repro/internal/ssa"
)

// NodeKind discriminates SEG vertices.
type NodeKind uint8

const (
	// NValue is a value-definition vertex (the paper's v@s with s the
	// defining statement; in SSA the pair collapses to the value).
	NValue NodeKind = iota
	// NUse is a use vertex v@s for a value used at a statement of
	// interest.
	NUse
)

// UseRole classifies what a use vertex does with the value.
type UseRole uint8

const (
	// RoleNone marks value vertices.
	RoleNone UseRole = iota
	// RoleDerefAddr: the value is dereferenced (load or store address).
	RoleDerefAddr
	// RoleFreeArg: the value is freed.
	RoleFreeArg
	// RoleCallArg: the value is passed as a call argument (ArgIdx).
	RoleCallArg
	// RoleRetArg: the value is returned (ArgIdx within the return list).
	RoleRetArg
	// RoleStoreVal: the value is stored into memory.
	RoleStoreVal
)

var roleNames = [...]string{
	RoleNone: "value", RoleDerefAddr: "deref", RoleFreeArg: "free",
	RoleCallArg: "arg", RoleRetArg: "ret", RoleStoreVal: "storeval",
}

func (r UseRole) String() string { return roleNames[r] }

// Node is a SEG vertex.
type Node struct {
	Kind   NodeKind
	Role   UseRole
	Val    *ir.Value
	Instr  *ir.Instr // defining instr (NValue, may be nil) or using instr
	ArgIdx int       // operand index for NUse
}

func (n *Node) String() string {
	if n.Kind == NValue {
		return n.Val.String()
	}
	return fmt.Sprintf("%s@%s#%d", n.Val, n.Role, n.Instr.ID)
}

// Edge is a conditional value-flow edge.
type Edge struct {
	To   *Node
	Cond *cond.Cond
}

// Graph is the SEG of one function.
type Graph struct {
	Fn   *ir.Func
	Info *ssa.Info
	PTA  *pta.Result

	values map[*ir.Value]*Node
	uses   map[useKey]*Node
	succ   map[*Node][]Edge
	nodes  []*Node

	// ByRole indexes use vertices for the checkers.
	ByRole map[UseRole][]*Node

	// instrIdx caches intra-block instruction positions for
	// happens-after queries.
	instrIdx map[*ir.Instr]int
	// blockReach memoizes block-level CFG reachability.
	blockReach map[*ir.Block]map[*ir.Block]bool
}

type useKey struct {
	instr  *ir.Instr
	argIdx int
	role   UseRole
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// AllNodes returns every vertex (callers must not mutate the slice).
func (g *Graph) AllNodes() []*Node { return g.nodes }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.succ {
		n += len(es)
	}
	return n
}

// GraphStats summarizes a graph's structure for the observability layer
// (gauges in the metrics registry, the -stats-json dump).
type GraphStats struct {
	Nodes      int
	Edges      int
	ValueNodes int
	UseNodes   int
	// ReachSets is the number of memoized block-reachability sets —
	// nonzero only for functions PrecomputeReach (or an ordering-sensitive
	// query) touched.
	ReachSets int
}

// Stats computes the graph's structural counters. It reads the same state
// the detection workers read, so call it before detection starts or after
// it finishes, not concurrently with graph-mutating lazy paths.
func (g *Graph) Stats() GraphStats {
	s := GraphStats{Nodes: len(g.nodes), Edges: g.NumEdges(), ReachSets: len(g.blockReach)}
	for _, n := range g.nodes {
		switch n.Kind {
		case NValue:
			s.ValueNodes++
		case NUse:
			s.UseNodes++
		}
	}
	return s
}

// ValueNode returns the vertex of a value definition, creating it on first
// use.
func (g *Graph) ValueNode(v *ir.Value) *Node {
	if n, ok := g.values[v]; ok {
		return n
	}
	n := &Node{Kind: NValue, Val: v, Instr: v.Def}
	g.values[v] = n
	g.nodes = append(g.nodes, n)
	return n
}

func (g *Graph) useNode(in *ir.Instr, argIdx int, role UseRole, v *ir.Value) *Node {
	key := useKey{instr: in, argIdx: argIdx, role: role}
	if n, ok := g.uses[key]; ok {
		return n
	}
	n := &Node{Kind: NUse, Role: role, Val: v, Instr: in, ArgIdx: argIdx}
	g.uses[key] = n
	g.nodes = append(g.nodes, n)
	g.ByRole[role] = append(g.ByRole[role], n)
	return n
}

// UseNode returns the use vertex for (instr, argIdx, role) if it exists.
func (g *Graph) UseNode(in *ir.Instr, argIdx int, role UseRole) *Node {
	return g.uses[useKey{instr: in, argIdx: argIdx, role: role}]
}

// Succs returns the outgoing edges of n.
func (g *Graph) Succs(n *Node) []Edge { return g.succ[n] }

func (g *Graph) addEdge(from, to *Node, c *cond.Cond) {
	if c.IsFalse() {
		return
	}
	g.succ[from] = append(g.succ[from], Edge{To: to, Cond: c})
}

// Build constructs the SEG for one analyzed function.
func Build(f *ir.Func, inf *ssa.Info, pr *pta.Result) *Graph {
	g := &Graph{
		Fn:         f,
		Info:       inf,
		PTA:        pr,
		values:     make(map[*ir.Value]*Node),
		uses:       make(map[useKey]*Node),
		succ:       make(map[*Node][]Edge),
		ByRole:     make(map[UseRole][]*Node),
		instrIdx:   make(map[*ir.Instr]int),
		blockReach: make(map[*ir.Block]map[*ir.Block]bool),
	}
	tr := inf.Conds.True()
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			g.instrIdx[in] = i
			switch in.Op {
			case ir.OpCopy:
				g.addEdge(g.ValueNode(in.Args[0]), g.ValueNode(in.Dst), tr)
			case ir.OpUn, ir.OpFieldAddr:
				// A field address aliases the same object as its base:
				// for value-flow purposes (a freed base makes field
				// accesses dangling) the flow continues through it.
				g.addEdge(g.ValueNode(in.Args[0]), g.ValueNode(in.Dst), tr)
			case ir.OpBin:
				// Both operands feed the result (the operator vertex of
				// the paper is folded into the defining instruction,
				// which DD-constraint generation consults directly).
				g.addEdge(g.ValueNode(in.Args[0]), g.ValueNode(in.Dst), tr)
				g.addEdge(g.ValueNode(in.Args[1]), g.ValueNode(in.Dst), tr)
			case ir.OpPhi:
				gates := inf.Gates[in]
				for i, a := range in.Args {
					c := tr
					if gates != nil {
						c = gates[i]
					}
					g.addEdge(g.ValueNode(a), g.ValueNode(in.Dst), c)
				}
			case ir.OpLoad:
				// Deref use of the address.
				g.addEdge(g.ValueNode(in.Args[0]), g.useNode(in, 0, RoleDerefAddr, in.Args[0]), tr)
				// Memory-induced data dependence from stored values.
				for _, gv := range pr.LoadSources[in] {
					g.addEdge(g.ValueNode(gv.Val), g.ValueNode(in.Dst), gv.Cond)
				}
			case ir.OpStore:
				g.addEdge(g.ValueNode(in.Args[0]), g.useNode(in, 0, RoleDerefAddr, in.Args[0]), tr)
				g.addEdge(g.ValueNode(in.Args[1]), g.useNode(in, 1, RoleStoreVal, in.Args[1]), tr)
			case ir.OpFree:
				g.addEdge(g.ValueNode(in.Args[0]), g.useNode(in, 0, RoleFreeArg, in.Args[0]), tr)
			case ir.OpCall:
				for i, a := range in.Args {
					g.addEdge(g.ValueNode(a), g.useNode(in, i, RoleCallArg, a), tr)
				}
				for _, d := range in.Dsts {
					if d != nil {
						g.ValueNode(d)
					}
				}
			case ir.OpRet:
				for i, a := range in.Args {
					g.addEdge(g.ValueNode(a), g.useNode(in, i, RoleRetArg, a), tr)
				}
			}
		}
	}
	return g
}

// EnsureValueNodes pre-creates the value vertex of every parameter and every
// instruction operand/result of the function. The detection engine requests
// value vertices lazily (ValueNode creates on first use, mutating the
// graph); pre-creating every vertex the search can possibly name freezes the
// graph, so concurrent detection workers only ever read it.
func (g *Graph) EnsureValueNodes() {
	for _, p := range g.Fn.Params {
		g.ValueNode(p)
	}
	for _, b := range g.Fn.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a != nil {
					g.ValueNode(a)
				}
			}
			if in.Dst != nil {
				g.ValueNode(in.Dst)
			}
			for _, d := range in.Dsts {
				if d != nil {
					g.ValueNode(d)
				}
			}
		}
	}
}

// PrecomputeReach fills the block-reachability memo for every block, so
// HappensAfter becomes a pure read (safe from concurrent detection workers).
func (g *Graph) PrecomputeReach() {
	for _, b := range g.Fn.Blocks {
		g.reachableBlocks(b)
	}
}

// HappensAfter reports whether instruction b can execute after instruction
// a in some run of the function: either b is reachable from a's block, or
// they share a block and b comes later.
func (g *Graph) HappensAfter(a, b *ir.Instr) bool {
	if a.Block == b.Block {
		return g.instrIdx[b] > g.instrIdx[a]
	}
	return g.reachableBlocks(a.Block)[b.Block]
}

func (g *Graph) reachableBlocks(from *ir.Block) map[*ir.Block]bool {
	if r, ok := g.blockReach[from]; ok {
		return r
	}
	r := make(map[*ir.Block]bool)
	var walk func(*ir.Block)
	walk = func(b *ir.Block) {
		for _, s := range b.Succs {
			if !r[s] {
				r[s] = true
				walk(s)
			}
		}
	}
	walk(from)
	g.blockReach[from] = r
	return r
}

// CD returns the direct control-dependence condition of the statement an
// instruction belongs to (the CD(v@s) of Equation 1, non-recursive part).
func (g *Graph) CD(in *ir.Instr) *cond.Cond {
	return g.Info.CDCond(in.Block)
}
