package seg

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/minic"
	"repro/internal/modref"
	"repro/internal/pta"
	"repro/internal/ssa"
	"repro/internal/transform"
)

func buildSEGs(t *testing.T, src string) (*ir.Module, map[string]*Graph) {
	t.Helper()
	prog, err := minic.ParseProgram([]minic.NamedSource{{Name: "t.mc", Src: src}})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Program(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	infos := make(map[string]*ssa.Info)
	for _, f := range m.Funcs {
		inf, err := ssa.Transform(f)
		if err != nil {
			t.Fatalf("ssa %s: %v", f.Name, err)
		}
		infos[f.Name] = inf
	}
	mr := modref.Analyze(m)
	if err := transform.Apply(m, mr); err != nil {
		t.Fatalf("transform: %v", err)
	}
	graphs := make(map[string]*Graph)
	for _, f := range m.Funcs {
		pr, err := pta.Analyze(f, infos[f.Name], pta.Options{})
		if err != nil {
			t.Fatalf("pta %s: %v", f.Name, err)
		}
		graphs[f.Name] = Build(f, infos[f.Name], pr)
	}
	return m, graphs
}

// reachesNode reports whether dst is reachable from src in the SEG.
func reachesNode(g *Graph, src, dst *Node) bool {
	seen := map[*Node]bool{}
	var dfs func(*Node) bool
	dfs = func(n *Node) bool {
		if n == dst {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, e := range g.Succs(n) {
			if dfs(e.To) {
				return true
			}
		}
		return false
	}
	return dfs(src)
}

func TestSEGFreeToUseThroughMemory(t *testing.T) {
	m, graphs := buildSEGs(t, `
void f() {
	int *c = malloc();
	int **slot = malloc();
	*slot = c;
	free(c);
	int *u = *slot;
	sink(*u);
}`)
	f := m.ByName["f"]
	g := graphs["f"]
	frees := g.ByRole[RoleFreeArg]
	if len(frees) != 1 {
		t.Fatalf("free uses = %v", frees)
	}
	// The freed value flows through the slot to u, which is dereferenced
	// by the load feeding sink.
	freed := g.ValueNode(frees[0].Val)
	derefs := g.ByRole[RoleDerefAddr]
	found := false
	for _, d := range derefs {
		if reachesNode(g, freed, d) && g.HappensAfter(frees[0].Instr, d.Instr) {
			found = true
		}
	}
	if !found {
		t.Fatalf("freed value does not reach any later deref")
	}
	_ = f
}

func TestSEGPhiGatesOnEdges(t *testing.T) {
	m, graphs := buildSEGs(t, `
int f(bool c, int a, int b) {
	int x = 0;
	if (c) { x = a; } else { x = b; }
	return x;
}`)
	f := m.ByName["f"]
	g := graphs["f"]
	// Find the phi and check its incoming edges carry non-trivial conds.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				continue
			}
			for _, a := range in.Args {
				from := g.ValueNode(a)
				for _, e := range g.Succs(from) {
					if e.To == g.ValueNode(in.Dst) {
						if e.Cond.IsTrue() {
							t.Errorf("phi edge from %s unguarded", a)
						}
					}
				}
			}
		}
	}
}

func TestSEGLoadEdgesCarryGuards(t *testing.T) {
	m, graphs := buildSEGs(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { *p = 1; } else { *p = 2; }
	int x = *p;
	use(x);
}`)
	f := m.ByName["f"]
	g := graphs["f"]
	var load *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				load = in
			}
		}
	}
	dst := g.ValueNode(load.Dst)
	guarded := 0
	for _, src := range []int64{1, 2} {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, e := range g.Succs(g.ValueNode(f.ConstInt(src))) {
					if e.To == dst && !e.Cond.IsTrue() {
						guarded++
					}
				}
				_ = in
			}
			break
		}
		break
	}
	// Simpler check: dst has exactly two incoming edges with guards.
	incoming := 0
	for _, n := range g.nodes {
		for _, e := range g.Succs(n) {
			if e.To == dst {
				incoming++
				if e.Cond.IsTrue() {
					t.Errorf("memory edge %s -> %s unguarded", n, dst)
				}
			}
		}
	}
	if incoming != 2 {
		t.Fatalf("load dst has %d incoming edges, want 2", incoming)
	}
	_ = guarded
}

func TestSEGCallAndRetUses(t *testing.T) {
	m, graphs := buildSEGs(t, `
int id(int x) { return x; }
void f() {
	int a = 3;
	int b = id(a);
	use(b);
}`)
	g := graphs["f"]
	if len(g.ByRole[RoleCallArg]) < 2 { // id(a) and use(b)
		t.Fatalf("call arg uses = %d", len(g.ByRole[RoleCallArg]))
	}
	gid := graphs["id"]
	if len(gid.ByRole[RoleRetArg]) != 1 {
		t.Fatalf("id ret uses = %d", len(gid.ByRole[RoleRetArg]))
	}
	// The ret use is fed by the parameter.
	m.ByName["id"] = m.ByName["id"]
	param := gid.Fn.Params[0]
	if !reachesNode(gid, gid.ValueNode(param), gid.ByRole[RoleRetArg][0]) {
		t.Fatal("param does not reach return in id")
	}
}

func TestHappensAfter(t *testing.T) {
	m, graphs := buildSEGs(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	sink(*p);
}`)
	f := m.ByName["f"]
	g := graphs["f"]
	var freeIn, loadIn *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpFree:
				freeIn = in
			case ir.OpLoad:
				loadIn = in
			}
		}
	}
	if !g.HappensAfter(freeIn, loadIn) {
		t.Error("load after free not detected")
	}
	if g.HappensAfter(loadIn, freeIn) {
		t.Error("free after load wrongly detected")
	}
}

func TestHappensAfterSameBlock(t *testing.T) {
	m, graphs := buildSEGs(t, `
void f() {
	int *p = malloc();
	free(p);
	sink(*p);
}`)
	f := m.ByName["f"]
	g := graphs["f"]
	var freeIn, loadIn *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpFree:
				freeIn = in
			case ir.OpLoad:
				loadIn = in
			}
		}
	}
	if !g.HappensAfter(freeIn, loadIn) {
		t.Error("same-block ordering broken")
	}
}

func TestSEGSizeCounters(t *testing.T) {
	_, graphs := buildSEGs(t, `
int f(int a, int b) { return a + b; }`)
	g := graphs["f"]
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatalf("empty SEG: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestSEGCDCondition(t *testing.T) {
	m, graphs := buildSEGs(t, `
void f(bool c) {
	if (c) { g(); }
}`)
	f := m.ByName["f"]
	g := graphs["f"]
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				if g.CD(in).IsTrue() {
					t.Error("guarded call has trivial CD")
				}
			}
		}
	}
}

func TestSEGDotExport(t *testing.T) {
	_, graphs := buildSEGs(t, `
void f(bool c) {
	int *p = malloc();
	if (c) { free(p); }
	sink(*p);
}`)
	dot := graphs["f"].Dot()
	for _, frag := range []string{"digraph", "shape=ellipse", "free", "deref", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("dot missing %q:\n%s", frag, dot)
		}
	}
	// Conditional memory edges carry labels.
	if !strings.Contains(dot, "label=") {
		t.Error("no labeled edges in dot output")
	}
}
