package seg

import (
	"fmt"
	"strings"
)

// Dot renders the SEG in Graphviz DOT syntax. Value vertices are ellipses,
// use vertices are boxes colored by role, and edges show their conditions
// (unconditional edges are unlabeled). The output is deterministic in node
// creation order.
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", "seg_"+g.Fn.Name)
	b.WriteString("  rankdir=LR;\n  node [fontname=\"monospace\", fontsize=9];\n")

	id := make(map[*Node]int, len(g.nodes))
	for i, n := range g.nodes {
		id[n] = i
		switch n.Kind {
		case NValue:
			fmt.Fprintf(&b, "  n%d [label=%q, shape=ellipse];\n", i, n.Val.String())
		default:
			color := map[UseRole]string{
				RoleDerefAddr: "lightcoral",
				RoleFreeArg:   "orange",
				RoleCallArg:   "lightblue",
				RoleRetArg:    "lightgreen",
				RoleStoreVal:  "lightgray",
			}[n.Role]
			fmt.Fprintf(&b, "  n%d [label=%q, shape=box, style=filled, fillcolor=%q];\n",
				i, n.String(), color)
		}
	}
	for _, n := range g.nodes {
		for _, e := range g.succ[n] {
			if e.Cond.IsTrue() {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", id[n], id[e.To])
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", id[n], id[e.To], e.Cond.String())
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
