package seg

import (
	"fmt"

	"repro/internal/cond"
	"repro/internal/ir"
	"repro/internal/pta"
	"repro/internal/ssa"
	"repro/internal/wirebin"
)

// Wire form of a Graph for the persistent artifact store. Vertices are
// serialized in creation order and referenced by position; values,
// instructions, and conditions by their dense per-function IDs. Creation
// order is load-bearing: ByRole index order equals vertex creation order,
// and detection iterates ByRole, so preserving the order preserves report
// determinism. The lazy happens-after memo (blockReach) restarts empty and
// the intra-block instruction index is rebuilt by the same scan Build uses.

// SEGNodeWire is the serialized form of one Node.
type SEGNodeWire struct {
	Kind   NodeKind
	Role   UseRole
	Val    int32
	Instr  int32
	ArgIdx int32
}

// SEGEdgeWire is one outgoing edge.
type SEGEdgeWire struct {
	To   int32 // node position
	Cond int32
}

// SEGSuccWire is one vertex's ordered edge list.
type SEGSuccWire struct {
	From  int32 // node position
	Edges []SEGEdgeWire
}

// GraphWire is the serialized form of a Graph (minus Fn/Info/PTA, which
// are re-attached at import).
type GraphWire struct {
	Nodes []SEGNodeWire
	Succs []SEGSuccWire
}

// ExportGraph flattens g into wire form.
func ExportGraph(g *Graph) *GraphWire {
	w := &GraphWire{Nodes: make([]SEGNodeWire, len(g.nodes))}
	pos := make(map[*Node]int32, len(g.nodes))
	for i, n := range g.nodes {
		pos[n] = int32(i)
		nw := SEGNodeWire{Kind: n.Kind, Role: n.Role, Val: -1, Instr: -1, ArgIdx: int32(n.ArgIdx)}
		if n.Val != nil {
			nw.Val = int32(n.Val.ID)
		}
		if n.Instr != nil {
			nw.Instr = int32(n.Instr.ID)
		}
		w.Nodes[i] = nw
	}
	// Emit edge lists in vertex order (map iteration would be random).
	for i, n := range g.nodes {
		es := g.succ[n]
		if len(es) == 0 {
			continue
		}
		sw := SEGSuccWire{From: int32(i), Edges: make([]SEGEdgeWire, len(es))}
		for j, e := range es {
			ew := SEGEdgeWire{To: pos[e.To], Cond: -1}
			if e.Cond != nil {
				ew.Cond = int32(e.Cond.ID())
			}
			sw.Edges[j] = ew
		}
		w.Succs = append(w.Succs, sw)
	}
	return w
}

// ImportGraph rebuilds a Graph for f from wire form. ix and nodes must be
// the companion ir/cond imports of the same artifact.
func ImportGraph(w *GraphWire, f *ir.Func, inf *ssa.Info, pr *pta.Result, ix *ir.Index, nodes []*cond.Cond) (*Graph, error) {
	g := &Graph{
		Fn:         f,
		Info:       inf,
		PTA:        pr,
		values:     make(map[*ir.Value]*Node),
		uses:       make(map[useKey]*Node, len(w.Nodes)),
		succ:       make(map[*Node][]Edge, len(w.Succs)),
		nodes:      make([]*Node, len(w.Nodes)),
		ByRole:     make(map[UseRole][]*Node),
		instrIdx:   make(map[*ir.Instr]int),
		blockReach: make(map[*ir.Block]map[*ir.Block]bool),
	}
	// Nodes are batch-allocated from one backing array: the graph lives or
	// dies wholesale, and per-node allocations dominate import time.
	arena := make([]Node, len(w.Nodes))
	for i, nw := range w.Nodes {
		n := &arena[i]
		*n = Node{Kind: nw.Kind, Role: nw.Role, ArgIdx: int(nw.ArgIdx)}
		if nw.Val != -1 {
			if nw.Val < 0 || int(nw.Val) >= len(ix.Values) || ix.Values[nw.Val] == nil {
				return nil, fmt.Errorf("seg: import %s: bad value id %d", f.Name, nw.Val)
			}
			n.Val = ix.Values[nw.Val]
		}
		if nw.Instr != -1 {
			if nw.Instr < 0 || int(nw.Instr) >= len(ix.Instrs) || ix.Instrs[nw.Instr] == nil {
				return nil, fmt.Errorf("seg: import %s: bad instr id %d", f.Name, nw.Instr)
			}
			n.Instr = ix.Instrs[nw.Instr]
		}
		g.nodes[i] = n
		switch n.Kind {
		case NValue:
			if n.Val == nil {
				return nil, fmt.Errorf("seg: import %s: value vertex %d without value", f.Name, i)
			}
			g.values[n.Val] = n
		case NUse:
			g.uses[useKey{instr: n.Instr, argIdx: n.ArgIdx, role: n.Role}] = n
			g.ByRole[n.Role] = append(g.ByRole[n.Role], n)
		default:
			return nil, fmt.Errorf("seg: import %s: vertex %d has unknown kind %d", f.Name, i, n.Kind)
		}
	}
	for _, sw := range w.Succs {
		if sw.From < 0 || int(sw.From) >= len(g.nodes) {
			return nil, fmt.Errorf("seg: import %s: bad edge source %d", f.Name, sw.From)
		}
		es := make([]Edge, len(sw.Edges))
		for j, ew := range sw.Edges {
			if ew.To < 0 || int(ew.To) >= len(g.nodes) {
				return nil, fmt.Errorf("seg: import %s: bad edge target %d", f.Name, ew.To)
			}
			var c *cond.Cond
			if ew.Cond != -1 {
				if ew.Cond < 0 || int(ew.Cond) >= len(nodes) {
					return nil, fmt.Errorf("seg: import %s: bad edge cond %d", f.Name, ew.Cond)
				}
				c = nodes[ew.Cond]
			}
			es[j] = Edge{To: g.nodes[ew.To], Cond: c}
		}
		g.succ[g.nodes[sw.From]] = es
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			g.instrIdx[in] = i
		}
	}
	return g, nil
}

// AppendWire appends w's binary encoding to e.
func (w *GraphWire) AppendWire(e *wirebin.Writer) {
	e.Uvarint(uint64(len(w.Nodes)))
	for i := range w.Nodes {
		nw := &w.Nodes[i]
		e.U8(uint8(nw.Kind))
		e.U8(uint8(nw.Role))
		e.I32(nw.Val)
		e.I32(nw.Instr)
		e.I32(nw.ArgIdx)
	}
	e.Uvarint(uint64(len(w.Succs)))
	for i := range w.Succs {
		sw := &w.Succs[i]
		e.I32(sw.From)
		e.Uvarint(uint64(len(sw.Edges)))
		for j := range sw.Edges {
			e.I32(sw.Edges[j].To)
			e.I32(sw.Edges[j].Cond)
		}
	}
}

// DecodeGraphWire reads one GraphWire from r.
func DecodeGraphWire(r *wirebin.Reader) (*GraphWire, error) {
	w := &GraphWire{}
	if n := r.Len(); n > 0 {
		w.Nodes = make([]SEGNodeWire, n)
		for i := range w.Nodes {
			w.Nodes[i] = SEGNodeWire{
				Kind: NodeKind(r.U8()), Role: UseRole(r.U8()),
				Val: r.I32(), Instr: r.I32(), ArgIdx: r.I32(),
			}
		}
	}
	if n := r.Len(); n > 0 {
		w.Succs = make([]SEGSuccWire, n)
		for i := range w.Succs {
			sw := &w.Succs[i]
			sw.From = r.I32()
			if m := r.Len(); m > 0 {
				sw.Edges = make([]SEGEdgeWire, m)
				for j := range sw.Edges {
					sw.Edges[j] = SEGEdgeWire{To: r.I32(), Cond: r.I32()}
				}
			}
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("seg: decode graph wire: %w", err)
	}
	return w, nil
}
