// Package obs is the observability layer of the Pinpoint pipeline: a
// dependency-free metrics registry (counters, gauges, latency histograms),
// hierarchical phase timers, and a span recorder whose buffer exports as
// Chrome trace-event JSON (loadable in chrome://tracing or Perfetto).
//
// The central type is Recorder. One Recorder observes one analysis run; the
// pipeline threads a *Recorder through core.BuildOptions and detect.Options
// and every stage records into it. Two invariants make it safe to wire
// unconditionally:
//
//   - a nil *Recorder is valid everywhere: every method on it (and on the
//     nil metrics it hands out) is a cheap no-op, so disabled observability
//     costs one nil check per call site and allocates nothing;
//   - recording never influences the analysis: metrics and trace events are
//     write-only from the pipeline's point of view, so reports are
//     byte-identical with observability on or off (asserted by the
//     determinism tests in internal/detect).
//
// Conventions: metric names are dot-separated hierarchies with an _ns
// suffix for nanosecond quantities ("phase.parse_ns", "smt.query_ns").
// Trace track 0 ("pipeline") carries the hierarchical phase spans; tracks
// 1..N ("worker N") carry per-function build spans, per-task detection
// spans, and per-query SMT spans.
package obs

import (
	"time"
)

// Recorder is the per-run observability hub: a metrics registry plus an
// optional trace buffer.
type Recorder struct {
	reg   *Registry
	trace *traceBuffer
	t0    time.Time
	now   func() time.Time
}

// New returns a Recorder that collects metrics but no trace events.
func New() *Recorder { return newWithClock(false, time.Now) }

// NewTracing returns a Recorder that collects metrics and trace events.
func NewTracing() *Recorder { return newWithClock(true, time.Now) }

// newWithClock builds a Recorder on an explicit clock (tests pin it).
func newWithClock(tracing bool, now func() time.Time) *Recorder {
	r := &Recorder{reg: NewRegistry(), t0: now(), now: now}
	if tracing {
		r.trace = newTraceBuffer()
	}
	return r
}

// Tracing reports whether trace events are being collected. Callers use it
// to skip building span names and args on hot paths.
func (r *Recorder) Tracing() bool { return r != nil && r.trace != nil }

// Registry returns the underlying metrics registry (nil for a nil
// Recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Counter returns the named counter (nil, and safe to use, for a nil
// Recorder).
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name)
}

// Gauge returns the named gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name)
}

// FloatGauge returns the named float gauge.
func (r *Recorder) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	return r.reg.FloatGauge(name)
}

// Histogram returns the named histogram.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name)
}

// Arg is one key/value annotation on a trace event.
type Arg struct {
	Key string
	Val string
}

// Span is an open interval being recorded. End closes it. The zero Span is
// valid and End on it is a no-op, so callers can thread spans through
// without nil checks.
type Span struct {
	r     *Recorder
	name  string
	tid   int
	start time.Time
	args  []Arg
	phase bool
}

// Phase opens a hierarchical phase span on the pipeline track (tid 0).
// Besides the trace event, the phase's duration accumulates in the counter
// "phase.<name>_ns", so the stage breakdown is available from the registry
// even without tracing. Nested phases use slash-separated names
// ("detect/prepare"); nesting on the shared track renders hierarchically in
// trace viewers.
func (r *Recorder) Phase(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, tid: 0, start: r.now(), phase: true}
}

// Span opens a span on an arbitrary track; workers use tid = worker+1.
// Hot paths should guard calls with Tracing() to avoid building names and
// args that would be dropped.
func (r *Recorder) Span(tid int, name string, args ...Arg) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, tid: tid, start: r.now(), args: args}
}

// End closes the span, emitting its trace event (when tracing) and, for
// phases, accumulating the duration counter.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := s.r.now().Sub(s.start)
	if s.phase {
		s.r.reg.Counter("phase." + s.name + "_ns").Add(int64(d))
	}
	s.r.event(s.tid, s.name, s.start, d, s.args)
}

// Event records a complete span after the fact, from an explicit start time
// and duration. It is the allocation-light path for callers that already
// measured the interval themselves.
func (r *Recorder) Event(tid int, name string, start time.Time, dur time.Duration, args ...Arg) {
	if r == nil {
		return
	}
	r.event(tid, name, start, dur, args)
}

func (r *Recorder) event(tid int, name string, start time.Time, dur time.Duration, args []Arg) {
	if r.trace == nil {
		return
	}
	r.trace.add(traceEvent{
		Name: name,
		Tid:  tid,
		Ts:   start.Sub(r.t0).Microseconds(),
		Dur:  dur.Microseconds(),
		Args: args,
	})
}

// Snapshot returns a deterministic copy of every metric (zero value for a
// nil Recorder).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.reg.Snapshot()
}
