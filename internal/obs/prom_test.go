package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exposition byte-for-byte: family order
// (counters, gauges, summaries), name sort inside each family, name
// sanitization, and HELP escaping.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("detect.tasks").Add(7)
	r.Counter("smt.cache_hits").Add(3)
	r.Gauge("build.functions").Set(12)
	// A hostile name: sanitized in the metric name, escaped in HELP.
	r.Counter("weird name\\with\nstuff").Inc()
	h := r.Histogram("smt.query_ns")
	h.Observe(1000)
	h.Observe(1000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()
	want := `# HELP pinpoint_detect_tasks detect.tasks
# TYPE pinpoint_detect_tasks counter
pinpoint_detect_tasks 7
# HELP pinpoint_smt_cache_hits smt.cache_hits
# TYPE pinpoint_smt_cache_hits counter
pinpoint_smt_cache_hits 3
# HELP pinpoint_weird_name_with_stuff weird name\\with\nstuff
# TYPE pinpoint_weird_name_with_stuff counter
pinpoint_weird_name_with_stuff 1
# HELP pinpoint_build_functions build.functions
# TYPE pinpoint_build_functions gauge
pinpoint_build_functions 12
# HELP pinpoint_smt_query_ns smt.query_ns
# TYPE pinpoint_smt_query_ns summary
pinpoint_smt_query_ns{quantile="0.5"} 1000
pinpoint_smt_query_ns{quantile="0.95"} 1000
pinpoint_smt_query_ns{quantile="0.99"} 1000
pinpoint_smt_query_ns_sum 2000
pinpoint_smt_query_ns_count 2
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Stability: a second write of the same state is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatalf("WritePrometheus (second): %v", err)
	}
	if sb2.String() != got {
		t.Error("second exposition of unchanged state differs from the first")
	}
}

// TestPrometheusNilAndEmpty: a nil recorder writes nothing; an empty one
// writes nothing either (no families registered).
func TestPrometheusNilAndEmpty(t *testing.T) {
	var nilRec *Recorder
	var sb strings.Builder
	if err := nilRec.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil recorder: err=%v, wrote %q", err, sb.String())
	}
	if err := New().WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("empty recorder: err=%v, wrote %q", err, sb.String())
	}
}

// TestPrometheusConcurrent scrapes while writers hammer the registry; run
// under -race this pins the lock-consistency of Snapshot/WriteTo.
func TestPrometheusConcurrent(t *testing.T) {
	r := New()
	// Seed each family so the post-load assertions hold even if the writer
	// goroutines are scheduled only after the scrapes finish.
	r.Counter("c.load").Inc()
	r.Gauge("g.load").Set(0)
	r.Histogram("h.load_ns").Observe(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c.load").Inc()
				r.Gauge("g.load").Set(int64(i))
				r.Histogram("h.load_ns").Observe(int64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus under load: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pinpoint_c_load ", "pinpoint_g_load ", "pinpoint_h_load_ns_count "} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
