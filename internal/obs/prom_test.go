package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exposition byte-for-byte: family order
// (counters, gauges, summaries), name sort inside each family, name
// sanitization, and HELP escaping.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("detect.tasks").Add(7)
	r.Counter("smt.cache_hits").Add(3)
	r.Gauge("build.functions").Set(12)
	// A hostile name: sanitized in the metric name, escaped in HELP.
	r.Counter("weird name\\with\nstuff").Inc()
	h := r.Histogram("smt.query_ns")
	h.Observe(1000)
	h.Observe(1000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()
	want := `# HELP pinpoint_detect_tasks detect.tasks
# TYPE pinpoint_detect_tasks counter
pinpoint_detect_tasks 7
# HELP pinpoint_smt_cache_hits smt.cache_hits
# TYPE pinpoint_smt_cache_hits counter
pinpoint_smt_cache_hits 3
# HELP pinpoint_weird_name_with_stuff weird name\\with\nstuff
# TYPE pinpoint_weird_name_with_stuff counter
pinpoint_weird_name_with_stuff 1
# HELP pinpoint_build_functions build.functions
# TYPE pinpoint_build_functions gauge
pinpoint_build_functions 12
# HELP pinpoint_smt_query_ns smt.query_ns
# TYPE pinpoint_smt_query_ns summary
pinpoint_smt_query_ns{quantile="0.5"} 1000
pinpoint_smt_query_ns{quantile="0.95"} 1000
pinpoint_smt_query_ns{quantile="0.99"} 1000
pinpoint_smt_query_ns_sum 2000
pinpoint_smt_query_ns_count 2
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Stability: a second write of the same state is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatalf("WritePrometheus (second): %v", err)
	}
	if sb2.String() != got {
		t.Error("second exposition of unchanged state differs from the first")
	}
}

// TestPrometheusNilAndEmpty: a nil recorder writes nothing; an empty one
// writes nothing either (no families registered).
func TestPrometheusNilAndEmpty(t *testing.T) {
	var nilRec *Recorder
	var sb strings.Builder
	if err := nilRec.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil recorder: err=%v, wrote %q", err, sb.String())
	}
	if err := New().WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("empty recorder: err=%v, wrote %q", err, sb.String())
	}
}

// TestPrometheusConcurrent scrapes while writers hammer the registry; run
// under -race this pins the lock-consistency of Snapshot/WriteTo.
func TestPrometheusConcurrent(t *testing.T) {
	r := New()
	// Seed each family so the post-load assertions hold even if the writer
	// goroutines are scheduled only after the scrapes finish.
	r.Counter("c.load").Inc()
	r.Gauge("g.load").Set(0)
	r.Histogram("h.load_ns").Observe(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c.load").Inc()
				r.Gauge("g.load").Set(int64(i))
				r.Histogram("h.load_ns").Observe(int64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus under load: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pinpoint_c_load ", "pinpoint_g_load ", "pinpoint_h_load_ns_count "} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPrometheusMultiLabelFamily pins family grouping for series carrying
// two labels (phase + tenant, the server.phase_ns shape): one HELP/TYPE
// pair for the whole family, series sorted by label block, label keys in
// sorted order regardless of Labeled argument order, and the quantile
// label merged into each summary series' own block.
func TestPrometheusMultiLabelFamily(t *testing.T) {
	r := New()
	// Deliberately reversed argument order on one series: Labeled must
	// canonicalize to the same key order.
	for _, s := range []struct {
		name string
		v    int64
	}{
		{Labeled("server.phase_ns", "phase", "detect", "tenant", "beta"), 400},
		{Labeled("server.phase_ns", "tenant", "alpha", "phase", "detect"), 200},
		{Labeled("server.phase_ns", "phase", "build", "tenant", "alpha"), 100},
	} {
		r.Histogram(s.name).Observe(s.v)
	}
	r.Counter(Labeled("tenant.cost_requests", "tenant", "beta")).Add(2)
	r.Counter(Labeled("tenant.cost_requests", "tenant", "alpha")).Add(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP pinpoint_tenant_cost_requests tenant.cost_requests
# TYPE pinpoint_tenant_cost_requests counter
pinpoint_tenant_cost_requests{tenant="alpha"} 1
pinpoint_tenant_cost_requests{tenant="beta"} 2
# HELP pinpoint_server_phase_ns server.phase_ns
# TYPE pinpoint_server_phase_ns summary
pinpoint_server_phase_ns{phase="build",tenant="alpha",quantile="0.5"} 100
pinpoint_server_phase_ns{phase="build",tenant="alpha",quantile="0.95"} 100
pinpoint_server_phase_ns{phase="build",tenant="alpha",quantile="0.99"} 100
pinpoint_server_phase_ns_sum{phase="build",tenant="alpha"} 100
pinpoint_server_phase_ns_count{phase="build",tenant="alpha"} 1
pinpoint_server_phase_ns{phase="detect",tenant="alpha",quantile="0.5"} 200
pinpoint_server_phase_ns{phase="detect",tenant="alpha",quantile="0.95"} 200
pinpoint_server_phase_ns{phase="detect",tenant="alpha",quantile="0.99"} 200
pinpoint_server_phase_ns_sum{phase="detect",tenant="alpha"} 200
pinpoint_server_phase_ns_count{phase="detect",tenant="alpha"} 1
pinpoint_server_phase_ns{phase="detect",tenant="beta",quantile="0.5"} 400
pinpoint_server_phase_ns{phase="detect",tenant="beta",quantile="0.95"} 400
pinpoint_server_phase_ns{phase="detect",tenant="beta",quantile="0.99"} 400
pinpoint_server_phase_ns_sum{phase="detect",tenant="beta"} 400
pinpoint_server_phase_ns_count{phase="detect",tenant="beta"} 1
`
	if got != want {
		t.Errorf("multi-label exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusFloatGauge: float gauges expose as a gauge family with %g
// formatting, after the int gauges.
func TestPrometheusFloatGauge(t *testing.T) {
	r := New()
	r.Gauge("a.int").Set(3)
	r.FloatGauge(Labeled("server.slo_burn_rate", "window", "fast")).Set(1.25)
	r.FloatGauge(Labeled("server.slo_burn_rate", "window", "slow")).Set(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP pinpoint_a_int a.int
# TYPE pinpoint_a_int gauge
pinpoint_a_int 3
# HELP pinpoint_server_slo_burn_rate server.slo_burn_rate
# TYPE pinpoint_server_slo_burn_rate gauge
pinpoint_server_slo_burn_rate{window="fast"} 1.25
pinpoint_server_slo_burn_rate{window="slow"} 0.5
`
	if got := sb.String(); got != want {
		t.Errorf("float gauge exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
