package obs

import (
	"math/rand"
	"testing"
)

func newHist() *Histogram {
	// Via the registry so min is initialized the same way production code
	// gets it.
	return NewRegistry().Histogram("h")
}

// TestHistogramUniform checks quantile estimates against a known uniform
// distribution. With power-of-two buckets and in-bucket interpolation the
// estimate for a uniform distribution lands within a few percent.
func TestHistogramUniform(t *testing.T) {
	h := newHist()
	const n = 1000
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if h.Sum() != n*(n+1)/2 {
		t.Fatalf("sum = %d, want %d", h.Sum(), n*(n+1)/2)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1}, {0.5, 500}, {0.9, 900}, {0.99, 990}, {1, 1000},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		// Allow 10% relative error (the interpolation is much better in
		// practice; exact at the extremes).
		tol := c.want / 10
		if c.q == 0 || c.q == 1 {
			tol = 0
		}
		if got < c.want-tol || got > c.want+tol {
			t.Errorf("Quantile(%v) = %d, want %d ± %d", c.q, got, c.want, tol)
		}
	}
}

// TestHistogramSinglePoint: a degenerate distribution must report its one
// value exactly at every quantile (the min/max clamp guarantees it).
func TestHistogramSinglePoint(t *testing.T) {
	h := newHist()
	for i := 0; i < 100; i++ {
		h.Observe(42)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %d, want 42", q, got)
		}
	}
	snap := h.Snapshot()
	want := HistSnapshot{Count: 100, Sum: 4200, Min: 42, Max: 42, P50: 42, P90: 42, P95: 42, P99: 42}
	if snap != want {
		t.Errorf("snapshot = %+v, want %+v", snap, want)
	}
}

// TestHistogramBimodal: two well-separated modes — the median must come
// from the correct mode.
func TestHistogramBimodal(t *testing.T) {
	h := newHist()
	for i := 0; i < 90; i++ {
		h.Observe(100) // fast mode
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 << 20) // slow mode
	}
	if p50 := h.Quantile(0.5); p50 < 64 || p50 > 128 {
		t.Errorf("P50 = %d, want within the fast mode's bucket [64,128]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 1<<19 {
		t.Errorf("P99 = %d, want in the slow mode (>= %d)", p99, 1<<19)
	}
	if got := h.Quantile(1); got != 1<<20 {
		t.Errorf("max = %d, want %d", got, 1<<20)
	}
}

// TestHistogramGeometric: quantiles stay within a factor of two (one
// bucket) of the truth for an adversarially skewed distribution.
func TestHistogramGeometric(t *testing.T) {
	h := newHist()
	rng := rand.New(rand.NewSource(1))
	var samples []int64
	for i := 0; i < 5000; i++ {
		v := int64(1) << uint(rng.Intn(20))
		samples = append(samples, v)
		h.Observe(v)
	}
	// The true quantile of the sample set.
	trueQ := func(q float64) int64 {
		sorted := append([]int64(nil), samples...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		idx := int(q*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, want := h.Quantile(q), trueQ(q)
		if got < want/2 || got > want*2 {
			t.Errorf("Quantile(%v) = %d, want within 2x of %d", q, got, want)
		}
	}
}

// TestHistogramEmptyAndEdge covers empty histograms, zero/negative values,
// and bucket boundary maths.
func TestHistogramEmptyAndEdge(t *testing.T) {
	h := newHist()
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram not all-zero")
	}
	if snap := h.Snapshot(); snap != (HistSnapshot{}) {
		t.Errorf("empty snapshot = %+v", snap)
	}
	h.Observe(0)
	h.Observe(-5)
	if h.Quantile(0.5) > 0 {
		t.Errorf("P50 of non-positive observations = %d, want <= 0", h.Quantile(0.5))
	}
	if h.Quantile(0) != -5 {
		t.Errorf("min = %d, want -5", h.Quantile(0))
	}
	// Bucket math invariants.
	for _, v := range []int64{1, 2, 3, 4, 1023, 1024, 1 << 40} {
		b := bucketOf(v)
		lo, hi := bucketBounds(b)
		if v < lo || v >= hi {
			t.Errorf("value %d landed in bucket %d [%d,%d)", v, b, lo, hi)
		}
	}
}
