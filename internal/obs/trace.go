package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// traceEvent is one complete ("X"-phase) span in the buffer. Timestamps and
// durations are microseconds, the unit of the Chrome trace-event format.
type traceEvent struct {
	Name string
	Tid  int
	Ts   int64
	Dur  int64
	Args []Arg
}

// traceBuffer collects events from any number of goroutines.
type traceBuffer struct {
	mu     sync.Mutex
	events []traceEvent
}

func newTraceBuffer() *traceBuffer { return &traceBuffer{} }

func (b *traceBuffer) add(e traceEvent) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// jsonEvent is the Chrome trace-event wire format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" events are complete spans with a duration; "M" events are metadata
// (thread names). chrome://tracing and Perfetto both load the
// {"traceEvents": [...]} object form.
type jsonEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// WriteTrace renders the collected events as Chrome trace-event JSON.
// Events are sorted by (timestamp, track, name), so output is deterministic
// for a deterministic event set. A nil or non-tracing Recorder writes an
// empty (but valid) trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	var events []traceEvent
	if r != nil && r.trace != nil {
		r.trace.mu.Lock()
		events = append([]traceEvent(nil), r.trace.events...)
		r.trace.mu.Unlock()
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})

	out := traceFile{TraceEvents: []jsonEvent{}, DisplayTimeUnit: "ms"}

	// Name the tracks: tid 0 is the pipeline's phase hierarchy, tids >= 1
	// are workers.
	tids := map[int]bool{}
	for _, e := range events {
		tids[e.Tid] = true
	}
	sortedTids := make([]int, 0, len(tids))
	for t := range tids {
		sortedTids = append(sortedTids, t)
	}
	sort.Ints(sortedTids)
	for _, t := range sortedTids {
		name := "pipeline"
		if t > 0 {
			name = fmt.Sprintf("worker %d", t)
		}
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
			Args: map[string]string{"name": name},
		})
	}

	for _, e := range events {
		je := jsonEvent{
			Name: e.Name, Cat: "pinpoint", Ph: "X", Pid: 1, Tid: e.Tid,
			Ts: e.Ts, Dur: e.Dur,
		}
		if len(e.Args) > 0 {
			je.Args = make(map[string]string, len(e.Args))
			for _, a := range e.Args {
				je.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// EventCount returns the number of buffered trace events (0 when not
// tracing), primarily for tests and the CLI's summary line.
func (r *Recorder) EventCount() int {
	if r == nil || r.trace == nil {
		return 0
	}
	r.trace.mu.Lock()
	defer r.trace.mu.Unlock()
	return len(r.trace.events)
}
