package obs

import (
	"sort"
	"strings"
)

// Labeled metric names. The registry is a flat name → metric map with no
// native label dimension; rather than grow a second key space (and touch
// every lookup path), labels ride inside the name using the Prometheus
// exposition syntax itself:
//
//	Labeled("server.phase_ns", "phase", "detect")  →  server.phase_ns{phase="detect"}
//
// Each distinct label combination is its own registry entry (its own
// atomics), which is exactly Prometheus's data model — a labeled family is
// a set of independent series. The exposition writer groups entries that
// share a base name into one family: HELP/TYPE once, then every series
// with its label block. Keys are emitted in sorted order so the same label
// set always produces the same registry key regardless of argument order.

// Labeled builds a labeled metric name from a base name and key/value
// pairs. It panics on an odd number of pairs (a programming error, like a
// bad fmt verb). Label values are escaped per the exposition format;
// label keys must be legal Prometheus label names ([a-zA-Z_][a-zA-Z0-9_]*)
// and are used as-is.
func Labeled(base string, kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labeled requires key/value pairs")
	}
	if len(kv) == 0 {
		return base
	}
	type pair struct{ k, v string }
	pairs := make([]pair, len(kv)/2)
	for i := range pairs {
		pairs[i] = pair{kv[2*i], kv[2*i+1]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.Grow(len(base) + 16*len(pairs))
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitLabels splits a (possibly labeled) registry name into its base name
// and label block ("" when unlabeled). The label block keeps its braces.
func SplitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
