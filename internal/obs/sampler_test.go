package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// pinnedSampler builds a sampler over rec with a manually advanced clock.
// Each SampleNow after calling tick() lands step later than the previous.
func pinnedSampler(rec *Recorder, cfg SamplerConfig) (*Sampler, func(step time.Duration)) {
	s := NewSampler(rec, cfg)
	t0 := time.Unix(1700000000, 0)
	now := t0
	s.now = func() time.Time { return now }
	return s, func(step time.Duration) { now = now.Add(step) }
}

func TestSamplerDisabled(t *testing.T) {
	if s := NewSampler(nil, SamplerConfig{Interval: time.Second}); s != nil {
		t.Error("NewSampler(nil recorder) should be nil")
	}
	if s := NewSampler(New(), SamplerConfig{}); s != nil {
		t.Error("NewSampler with zero interval should be nil")
	}
	// Every method on the nil sampler is a no-op.
	var s *Sampler
	s.Start()
	s.SampleNow()
	s.OnSample(func(time.Time) {})
	if got := s.Query("", time.Time{}); len(got.Series) != 0 {
		t.Errorf("nil Query returned %d series", len(got.Series))
	}
	if _, _, ok := s.CounterDelta("x", time.Minute); ok {
		t.Error("nil CounterDelta reported ok")
	}
	if s.Capacity() != 0 || s.Interval() != 0 {
		t.Error("nil sampler reports nonzero capacity/interval")
	}
	s.Stop()
}

// TestSamplerRingBounded asserts the fixed-memory property: many more ticks
// than capacity never grow any ring past capacity, and the retained points
// are the newest ones.
func TestSamplerRingBounded(t *testing.T) {
	rec := New()
	s, tick := pinnedSampler(rec, SamplerConfig{Interval: time.Second, Retention: 5 * time.Second})
	if s.Capacity() != 5 {
		t.Fatalf("capacity = %d, want 5", s.Capacity())
	}
	g := rec.Gauge("app.value")
	for i := 0; i < 20; i++ {
		g.Set(int64(i))
		s.SampleNow()
		tick(time.Second)
	}
	res := s.Query("app.value", time.Time{})
	if len(res.Series) != 1 {
		t.Fatalf("got %d series, want 1", len(res.Series))
	}
	pts := res.Series[0].Points
	if len(pts) != 5 {
		t.Fatalf("ring retained %d points, want capacity 5", len(pts))
	}
	// Newest 5 of 20 samples: values 15..19, timestamps strictly increasing.
	for i, p := range pts {
		if want := float64(15 + i); p.V != want {
			t.Errorf("point %d value = %g, want %g", i, p.V, want)
		}
		if i > 0 && pts[i].T <= pts[i-1].T {
			t.Errorf("points not in time order at %d", i)
		}
	}
	// And the reported capacity bound holds for every series in the result.
	all := s.Query("", time.Time{})
	for _, sr := range all.Series {
		if len(sr.Points) > all.Capacity {
			t.Errorf("series %s %s has %d points > capacity %d", sr.Name, sr.Field, len(sr.Points), all.Capacity)
		}
	}
}

// TestSamplerCounterRate checks cumulative→rate conversion: a counter
// advancing 10/s samples as 10 per_second.
func TestSamplerCounterRate(t *testing.T) {
	rec := New()
	s, tick := pinnedSampler(rec, SamplerConfig{Interval: time.Second, Retention: time.Minute})
	c := rec.Counter("app.requests")
	for i := 0; i < 4; i++ {
		s.SampleNow()
		c.Add(10)
		tick(time.Second)
	}
	res := s.Query("app.requests", time.Time{})
	if len(res.Series) != 1 {
		t.Fatalf("got %d series, want 1", len(res.Series))
	}
	sr := res.Series[0]
	if sr.Field != "rate" || sr.Kind != "counter" || sr.Unit != "per_second" {
		t.Fatalf("series meta = %+v", sr)
	}
	// 4 raw samples → 3 rate points, each (10 more counts)/(1s).
	if len(sr.Points) != 3 {
		t.Fatalf("got %d rate points, want 3", len(sr.Points))
	}
	for i, p := range sr.Points {
		if math.Abs(p.V-10) > 1e-9 {
			t.Errorf("rate point %d = %g, want 10", i, p.V)
		}
	}
}

func TestSamplerHistogramFields(t *testing.T) {
	rec := New()
	s, _ := pinnedSampler(rec, SamplerConfig{Interval: time.Second, Retention: time.Minute})
	h := rec.Histogram(Labeled("app.latency_ns", "tenant", "a"))
	h.Observe(1000)
	h.Observe(2000)
	s.SampleNow()
	res := s.Query("app.latency_ns", time.Time{})
	fields := map[string]Series{}
	for _, sr := range res.Series {
		fields[sr.Field] = sr
		if sr.Base != "app.latency_ns" || sr.Name != `app.latency_ns{tenant="a"}` {
			t.Errorf("series base/name = %q / %q", sr.Base, sr.Name)
		}
	}
	for _, f := range []string{"p50", "p95", "p99", "count_rate"} {
		if _, ok := fields[f]; !ok {
			t.Errorf("missing histogram field %q", f)
		}
	}
	if fields["p50"].Unit != "ns" {
		t.Errorf("p50 unit = %q, want ns", fields["p50"].Unit)
	}
	// Querying by the full labeled name matches too; a different base does not.
	if got := s.Query(`app.latency_ns{tenant="a"}`, time.Time{}); len(got.Series) != 4 {
		t.Errorf("labeled-name query got %d series, want 4", len(got.Series))
	}
	if got := s.Query("no.such_metric", time.Time{}); len(got.Series) != 0 {
		t.Errorf("mismatched query got %d series", len(got.Series))
	}
}

func TestSamplerSinceFilter(t *testing.T) {
	rec := New()
	s, tick := pinnedSampler(rec, SamplerConfig{Interval: time.Second, Retention: time.Minute})
	g := rec.Gauge("app.value")
	var mid time.Time
	for i := 0; i < 6; i++ {
		if i == 3 {
			mid = s.now()
		}
		g.Set(int64(i))
		s.SampleNow()
		tick(time.Second)
	}
	res := s.Query("app.value", mid)
	if len(res.Series) != 1 {
		t.Fatalf("got %d series", len(res.Series))
	}
	if got := len(res.Series[0].Points); got != 3 {
		t.Errorf("since filter kept %d points, want 3", got)
	}
}

func TestSamplerCounterDelta(t *testing.T) {
	rec := New()
	s, tick := pinnedSampler(rec, SamplerConfig{Interval: time.Second, Retention: time.Minute})
	c := rec.Counter("app.requests")
	if _, _, ok := s.CounterDelta("app.requests", 2*time.Second); ok {
		t.Error("CounterDelta ok before any samples")
	}
	for i := 0; i < 5; i++ {
		s.SampleNow() // counter values 0, 3, 6, 9, 12
		c.Add(3)
		tick(time.Second)
	}
	// Trailing 2s window: newest (12) minus the sample 2s back (6).
	delta, span, ok := s.CounterDelta("app.requests", 2*time.Second)
	if !ok {
		t.Fatal("CounterDelta not ok")
	}
	if delta != 6 || span != 2*time.Second {
		t.Errorf("delta=%g span=%v, want 6 over 2s", delta, span)
	}
	// Window longer than retention falls back to the oldest point.
	delta, span, ok = s.CounterDelta("app.requests", time.Hour)
	if !ok || delta != 12 || span != 4*time.Second {
		t.Errorf("long-window delta=%g span=%v ok=%v, want 12 over 4s", delta, span, ok)
	}
}

func TestSamplerMaxSeries(t *testing.T) {
	rec := New()
	s, _ := pinnedSampler(rec, SamplerConfig{Interval: time.Second, Retention: time.Minute, MaxSeries: 3})
	rec.Gauge("a.one").Set(1)
	rec.Gauge("a.two").Set(2)
	rec.Gauge("a.three").Set(3)
	rec.Gauge("a.four").Set(4)
	s.SampleNow()
	res := s.Query("", time.Time{})
	if len(res.Series) != 3 {
		t.Errorf("tracked %d series, want MaxSeries=3", len(res.Series))
	}
	if res.DroppedSeries == 0 {
		t.Error("DroppedSeries not counted")
	}
}

// TestSamplerHooks: OnSample hooks run outside the sampler lock — a hook
// that queries the sampler and records new metrics must not deadlock.
func TestSamplerHooks(t *testing.T) {
	rec := New()
	s, tick := pinnedSampler(rec, SamplerConfig{Interval: time.Second, Retention: time.Minute})
	rec.Counter("app.requests").Add(5)
	var calls int
	s.OnSample(func(now time.Time) {
		calls++
		s.Query("app.requests", time.Time{})
		rec.FloatGauge("app.derived").Set(1.5)
	})
	s.SampleNow()
	tick(time.Second)
	s.SampleNow()
	if calls != 2 {
		t.Errorf("hook ran %d times, want 2", calls)
	}
	// The hook's derived gauge was itself sampled on the second tick.
	if got := s.Query("app.derived", time.Time{}); len(got.Series) != 1 {
		t.Errorf("derived gauge series count = %d, want 1", len(got.Series))
	}
}

// TestSamplerStartStop exercises the real goroutine path: ticks accumulate,
// Stop is idempotent, and Start after Stop resumes.
func TestSamplerStartStop(t *testing.T) {
	rec := New()
	s := NewSampler(rec, SamplerConfig{Interval: time.Millisecond, Retention: time.Second})
	rec.Gauge("app.value").Set(42)
	s.Start()
	s.Start() // second Start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for {
		res := s.Query("app.value", time.Time{})
		if len(res.Series) == 1 && len(res.Series[0].Points) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler goroutine produced <2 points in 2s")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop()
	s.Start()
	s.Stop()
}

// TestSamplerConcurrent drives recording, sampling, and querying from
// separate goroutines; run under -race this pins the locking story.
func TestSamplerConcurrent(t *testing.T) {
	rec := New()
	s := NewSampler(rec, SamplerConfig{Interval: time.Millisecond, Retention: 100 * time.Millisecond})
	s.Start()
	defer s.Stop()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := rec.Counter(Labeled("app.requests", "tenant", string(rune('a'+i))))
			h := rec.Histogram("app.latency_ns")
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(int64(i+1) * 100)
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Query("app.latency_ns", time.Time{})
				s.CounterDelta("app.requests", 50*time.Millisecond)
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestProcessSampler(t *testing.T) {
	rec := New()
	var p ProcessSampler
	p.Sample(rec)
	if rec.Gauge("process.goroutines").Value() <= 0 {
		t.Error("process.goroutines not positive")
	}
	if rec.Gauge("process.heap_bytes").Value() <= 0 {
		t.Error("process.heap_bytes not positive")
	}
	// Nil recorder is a no-op.
	p.Sample(nil)
}
