package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic trace tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: timeZero()} }

func timeZero() time.Time { return time.Unix(0, 0).UTC() }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by ns nanoseconds.
func (c *fakeClock) Advance(ns int64) {
	c.mu.Lock()
	c.t = c.t.Add(time.Duration(ns))
	c.mu.Unlock()
}

// TestTraceGolden pins the Chrome trace-event JSON to a golden file: a
// phase hierarchy on the pipeline track plus worker-track task and SMT
// spans, built on a fake clock.
func TestTraceGolden(t *testing.T) {
	clock := newFakeClock()
	r := newWithClock(true, clock.Now)

	build := r.Phase("build")
	parse := r.Phase("build/parse")
	clock.Advance(2_000_000) // 2ms
	parse.End()
	// Per-function work on two worker tracks, recorded after the fact.
	r.Event(1, "ssa:main", clock.Now(), 1500*time.Microsecond, Arg{"func", "main"})
	r.Event(2, "ssa:helper", clock.Now(), 700*time.Microsecond, Arg{"func", "helper"})
	clock.Advance(3_000_000)
	build.End()

	detect := r.Phase("detect")
	task := r.Span(1, "task:uaf", Arg{"func", "main"}, Arg{"at", "a.mc:3"})
	clock.Advance(1_000_000)
	r.Event(1, "smt", clock.Now(), 250*time.Microsecond, Arg{"checker", "uaf"})
	task.End()
	detect.End()

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}

	// The output must be valid JSON in the object form viewers accept.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceConcurrentAppend exercises the trace buffer from many
// goroutines (under -race) and checks nothing is lost.
func TestTraceConcurrentAppend(t *testing.T) {
	r := NewTracing()
	const goroutines, events = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				sp := r.Span(g+1, "e")
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := r.EventCount(); got != goroutines*events {
		t.Errorf("EventCount = %d, want %d", got, goroutines*events)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("concurrently built trace is not valid JSON: %v", err)
	}
}

// TestEmptyTrace: a non-tracing recorder still writes a valid empty trace.
func TestEmptyTrace(t *testing.T) {
	for _, r := range []*Recorder{nil, New()} {
		var buf bytes.Buffer
		if err := r.WriteTrace(&buf); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		var parsed struct {
			TraceEvents []any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
			t.Fatalf("empty trace invalid: %v", err)
		}
		if len(parsed.TraceEvents) != 0 {
			t.Errorf("empty trace has %d events", len(parsed.TraceEvents))
		}
	}
}
