package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent-safe, get-or-create store of named metrics.
// Lookups take a read lock; the metrics themselves are lock-free atomics,
// so hot paths should hoist the lookup out of loops and hammer the metric
// directly.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	floats   map[string]*FloatGauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.RLock()
	c := g.counters[name]
	g.mu.RUnlock()
	if c != nil {
		return c
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if c = g.counters[name]; c == nil {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.RLock()
	v := g.gauges[name]
	g.mu.RUnlock()
	if v != nil {
		return v
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if v = g.gauges[name]; v == nil {
		v = &Gauge{}
		g.gauges[name] = v
	}
	return v
}

// FloatGauge returns the named float gauge, creating it on first use.
func (g *Registry) FloatGauge(name string) *FloatGauge {
	if g == nil {
		return nil
	}
	g.mu.RLock()
	v := g.floats[name]
	g.mu.RUnlock()
	if v != nil {
		return v
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if v = g.floats[name]; v == nil {
		v = &FloatGauge{}
		g.floats[name] = v
	}
	return v
}

// Histogram returns the named histogram, creating it on first use.
func (g *Registry) Histogram(name string) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.RLock()
	h := g.hists[name]
	g.mu.RUnlock()
	if h != nil {
		return h
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if h = g.hists[name]; h == nil {
		h = &Histogram{}
		h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
		g.hists[name] = h
	}
	return h
}

// Counter is a monotonically accumulating int64 (atomic; nil-safe).
type Counter struct{ v atomic.Int64 }

// Add accumulates delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc accumulates one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins int64 (atomic; nil-safe).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a last-write-wins float64 (atomic bits; nil-safe). It
// exists for ratio-valued metrics — burn rates, fractions — that the int64
// Gauge would truncate to uselessness.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Visitor receives every metric of one kind during Registry.Each. Callbacks
// run under the registry's read lock: they must not create metrics on the
// same registry (self-deadlock) and should do no more than read values into
// caller-owned storage.
type Visitor struct {
	Counter    func(name string, c *Counter)
	Gauge      func(name string, v *Gauge)
	FloatGauge func(name string, v *FloatGauge)
	Histogram  func(name string, h *Histogram)
}

// Each visits every registered metric without copying the registry — the
// allocation-free path the time-series sampler takes every tick, where
// Snapshot's per-call maps would churn. Nil Visitor fields skip that kind;
// visit order within a kind is unspecified.
func (g *Registry) Each(v Visitor) {
	if g == nil {
		return
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	if v.Counter != nil {
		for name, c := range g.counters {
			v.Counter(name, c)
		}
	}
	if v.Gauge != nil {
		for name, gv := range g.gauges {
			v.Gauge(name, gv)
		}
	}
	if v.FloatGauge != nil {
		for name, fv := range g.floats {
			v.FloatGauge(name, fv)
		}
	}
	if v.Histogram != nil {
		for name, h := range g.hists {
			v.Histogram(name, h)
		}
	}
}

// Snapshot is a deterministic (sorted-key) copy of a registry's metrics,
// shaped for JSON export.
type Snapshot struct {
	Counters    map[string]int64        `json:"counters,omitempty"`
	Gauges      map[string]int64        `json:"gauges,omitempty"`
	FloatGauges map[string]float64      `json:"floatGauges,omitempty"`
	Histograms  map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric. Maps marshal with sorted keys, so the JSON
// form is deterministic given deterministic metric values.
func (g *Registry) Snapshot() Snapshot {
	if g == nil {
		return Snapshot{}
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Snapshot{}
	if len(g.counters) > 0 {
		s.Counters = make(map[string]int64, len(g.counters))
		for name, c := range g.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(g.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(g.gauges))
		for name, v := range g.gauges {
			s.Gauges[name] = v.Value()
		}
	}
	if len(g.floats) > 0 {
		s.FloatGauges = make(map[string]float64, len(g.floats))
		for name, v := range g.floats {
			s.FloatGauges[name] = v.Value()
		}
	}
	if len(g.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(g.hists))
		for name, h := range g.hists {
			hs := h.Snapshot()
			hs.Unit = UnitOf(name)
			s.Histograms[name] = hs
		}
	}
	return s
}

// Names lists every registered metric name, sorted, primarily for tests.
func (g *Registry) Names() []string {
	if g == nil {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for n := range g.counters {
		out = append(out, n)
	}
	for n := range g.gauges {
		out = append(out, n)
	}
	for n := range g.floats {
		out = append(out, n)
	}
	for n := range g.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
