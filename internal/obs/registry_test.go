package obs

import (
	"reflect"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines — the
// get-or-create races, atomic metric updates, and a concurrent Snapshot —
// and checks the final totals. Run under -race (scripts/check.sh does).
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 16
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Get-or-create on every iteration: the lookup path must be
				// race-free too, not just the atomics.
				reg.Counter("shared.counter").Inc()
				reg.Gauge("shared.gauge").Set(int64(g))
				reg.Histogram("shared.hist").Observe(int64(i + 1))
				if i%100 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := reg.Counter("shared.counter").Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := reg.Histogram("shared.hist").Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	wantSum := int64(goroutines) * int64(iters) * int64(iters+1) / 2
	if got := reg.Histogram("shared.hist").Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
	g := reg.Gauge("shared.gauge").Value()
	if g < 0 || g >= goroutines {
		t.Errorf("gauge = %d, want one of the written values [0,%d)", g, goroutines)
	}
}

// TestRegistryIdentity checks that the same name always returns the same
// metric and distinct names return distinct metrics.
func TestRegistryIdentity(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("same counter name returned distinct counters")
	}
	if reg.Counter("a") == reg.Counter("b") {
		t.Error("distinct counter names returned the same counter")
	}
	reg.Counter("a").Add(3)
	if got := reg.Counter("a").Value(); got != 3 {
		t.Errorf("counter a = %d, want 3", got)
	}
	want := []string{"a", "b"}
	if got := reg.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

// TestNilSafety: the nil Recorder / nil metric contract — everything is a
// no-op, nothing panics.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Tracing() {
		t.Error("nil recorder claims to be tracing")
	}
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	r.Gauge("x").Set(5)
	r.Gauge("x").Add(1)
	r.Histogram("x").Observe(7)
	sp := r.Phase("parse")
	sp.End()
	sp = r.Span(3, "task", Arg{"k", "v"})
	sp.End()
	r.Event(1, "e", timeZero(), 0)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil snapshot non-empty: %+v", s)
	}
	if n := r.EventCount(); n != 0 {
		t.Errorf("nil recorder has %d events", n)
	}
	var reg *Registry
	reg.Counter("x").Add(1)
	if reg.Names() != nil {
		t.Error("nil registry has names")
	}
}

// TestPhaseCounters: phase spans accumulate their duration in the
// "phase.<name>_ns" counter even without tracing.
func TestPhaseCounters(t *testing.T) {
	clock := newFakeClock()
	r := newWithClock(false, clock.Now)
	sp := r.Phase("parse")
	clock.Advance(1500) // 1.5µs
	sp.End()
	sp = r.Phase("parse")
	clock.Advance(500)
	sp.End()
	if got := r.Counter("phase.parse_ns").Value(); got != 2000 {
		t.Errorf("phase.parse_ns = %d, want 2000", got)
	}
	if r.EventCount() != 0 {
		t.Error("non-tracing recorder buffered trace events")
	}
}
