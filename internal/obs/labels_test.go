package obs

import (
	"strings"
	"testing"
)

func TestLabeled(t *testing.T) {
	cases := []struct {
		base string
		kv   []string
		want string
	}{
		{"server.phase_ns", []string{"phase", "detect"}, `server.phase_ns{phase="detect"}`},
		{"server.phase_ns", nil, "server.phase_ns"},
		// Keys sort, so argument order does not fork the series.
		{"x", []string{"b", "2", "a", "1"}, `x{a="1",b="2"}`},
		{"x", []string{"a", `q"uote\back`}, `x{a="q\"uote\\back"}`},
	}
	for _, c := range cases {
		if got := Labeled(c.base, c.kv...); got != c.want {
			t.Errorf("Labeled(%q, %v) = %q, want %q", c.base, c.kv, got, c.want)
		}
	}
}

func TestLabeledPanicsOnOddPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on odd kv count")
		}
	}()
	Labeled("x", "key-without-value")
}

func TestSplitLabels(t *testing.T) {
	if b, l := SplitLabels(`a.b_ns{phase="x"}`); b != "a.b_ns" || l != `{phase="x"}` {
		t.Errorf("got %q, %q", b, l)
	}
	if b, l := SplitLabels("a.b_ns"); b != "a.b_ns" || l != "" {
		t.Errorf("got %q, %q", b, l)
	}
}

func TestUnitOfLabeled(t *testing.T) {
	if got := UnitOf(`server.phase_ns{phase="detect"}`); got != "ns" {
		t.Errorf("UnitOf labeled _ns name: got %q", got)
	}
	if got := UnitOf(`server.requests{code="200"}`); got != "" {
		t.Errorf("UnitOf labeled plain name: got %q", got)
	}
}

// A labeled family exposes one HELP/TYPE pair and one series per label
// combination; summaries merge the quantile label into the series labels.
func TestWritePrometheusLabeledFamilies(t *testing.T) {
	r := New()
	r.Counter(Labeled("server.requests", "code", "200")).Add(7)
	r.Counter(Labeled("server.requests", "code", "500")).Add(1)
	r.Histogram(Labeled("server.phase_ns", "phase", "detect")).Observe(100)
	r.Histogram(Labeled("server.phase_ns", "phase", "build")).Observe(200)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	if n := strings.Count(got, "# HELP pinpoint_server_requests "); n != 1 {
		t.Errorf("HELP pinpoint_server_requests emitted %d times:\n%s", n, got)
	}
	if n := strings.Count(got, "# TYPE pinpoint_server_phase_ns summary"); n != 1 {
		t.Errorf("TYPE pinpoint_server_phase_ns emitted %d times:\n%s", n, got)
	}
	for _, want := range []string{
		`pinpoint_server_requests{code="200"} 7`,
		`pinpoint_server_requests{code="500"} 1`,
		`pinpoint_server_phase_ns{phase="detect",quantile="0.5"} 100`,
		`pinpoint_server_phase_ns{phase="build",quantile="0.99"} 200`,
		`pinpoint_server_phase_ns_sum{phase="detect"} 100`,
		`pinpoint_server_phase_ns_count{phase="build"} 1`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("missing series %q in:\n%s", want, got)
		}
	}
	// Label blocks must not be mangled by name sanitization.
	if strings.Contains(got, "_code_") || strings.Contains(got, "_phase_detect") {
		t.Errorf("label block was sanitized into the name:\n%s", got)
	}
}
