package obs

import (
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// numBuckets covers the full non-negative int64 range in powers of two:
// bucket 0 holds values <= 0, bucket i (i >= 1) holds [2^(i-1), 2^i).
const numBuckets = 64

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Observations are int64s (nanoseconds by convention for _ns metrics).
// Quantiles interpolate linearly inside the winning bucket and clamp to the
// observed min/max, which makes single-point distributions exact and keeps
// the worst-case relative error for any distribution below one bucket width
// (a factor of two), far tighter in practice.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // initialized to MaxInt64 by the registry
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // v in [2^(b-1), 2^b) for b >= 1
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// bucketBounds returns the [lo, hi) value range of a bucket.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i == numBuckets-1 {
		return lo, math.MaxInt64
	}
	return lo, lo << 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-th quantile (q in [0, 1]) of the observed
// distribution. Returns 0 for an empty histogram. Quantile(0) is the exact
// minimum, Quantile(1) the exact maximum.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	mn, mx := h.min.Load(), h.max.Load()
	if q <= 0 {
		return mn
	}
	if q >= 1 {
		return mx
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if cum+c < target {
			cum += c
			continue
		}
		lo, hi := bucketBounds(i)
		// Linear interpolation within the bucket: the target rank sits a
		// fraction f of the way through this bucket's c observations.
		f := float64(target-cum) / float64(c)
		v := int64(float64(lo) + f*float64(hi-lo))
		if v < mn {
			v = mn
		}
		if v > mx {
			v = mx
		}
		return v
	}
	return mx
}

// HistSnapshot is a point-in-time summary of a histogram, shaped for JSON.
// All values except Count share the unit named by Unit (the registry derives
// it from the metric-name suffix; "_ns" metrics are nanoseconds).
type HistSnapshot struct {
	// Unit names the unit of Sum/Min/Max and the percentiles ("ns" for
	// nanosecond latencies, empty for plain counts). Count is always a
	// number of observations.
	Unit  string `json:"unit,omitempty"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
}

// UnitOf derives a metric's unit from its name suffix, the repo-wide
// convention documented on package obs: "_ns" metrics are nanoseconds.
// Labeled names are judged by their base name alone.
func UnitOf(name string) string {
	name, _ = SplitLabels(name)
	if strings.HasSuffix(name, "_ns") {
		return "ns"
	}
	return ""
}

// Snapshot summarizes the histogram. An empty histogram snapshots to all
// zeros.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil || h.count.Load() == 0 {
		return HistSnapshot{}
	}
	return HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
