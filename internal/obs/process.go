package obs

import "runtime"

// Process self-metrics: the runtime-health side of the flight recorder.
// Sampled into the ordinary registry, so they ride the same Prometheus
// exposition and ring-buffer time series as the app metrics:
//
//	process.goroutines   gauge      runtime.NumGoroutine
//	process.heap_bytes   gauge      MemStats.HeapAlloc
//	process.gc_pause_ns  histogram  one observation per completed GC cycle
//
// Sampling is driven by the Sampler's tick (nothing records these when the
// flight recorder is disabled, keeping /metrics byte-identical to the
// pre-recorder exposition), but ProcessSampler is exported so other
// periodic drivers can reuse it.

// ProcessSampler carries the between-samples state needed to turn the
// runtime's cumulative GC bookkeeping into per-cycle observations. The zero
// value is ready to use; one instance must not be sampled concurrently with
// itself.
type ProcessSampler struct {
	lastNumGC uint32
}

// Sample reads the runtime's current state into rec. ReadMemStats briefly
// stops the world, so callers should sample on a period (the flight
// recorder's tick), not per request.
func (p *ProcessSampler) Sample(rec *Recorder) {
	if rec == nil {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	rec.Gauge("process.goroutines").Set(int64(runtime.NumGoroutine()))
	rec.Gauge("process.heap_bytes").Set(int64(m.HeapAlloc))
	h := rec.Histogram("process.gc_pause_ns")
	n := m.NumGC - p.lastNumGC
	if n > uint32(len(m.PauseNs)) {
		// More cycles than the runtime's pause ring retains; the overwritten
		// ones are lost. Observe what survived.
		n = uint32(len(m.PauseNs))
	}
	for i := m.NumGC - n; i < m.NumGC; i++ {
		h.Observe(int64(m.PauseNs[(i+255)%256]))
	}
	p.lastNumGC = m.NumGC
}
