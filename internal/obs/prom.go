package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format exposition of the metrics registry, for the
// analysis service's /metrics endpoint (and anything else that wants to
// scrape a Recorder).
//
// The mapping follows the repo's metric conventions:
//
//   - counters and gauges export as-is under their sanitized name;
//   - histograms export as Prometheus summaries: p50/p95/p99 quantile
//     samples plus the cumulative <name>_sum and <name>_count series;
//   - every name is prefixed "pinpoint_" and dots become underscores, so
//     "smt.query_ns" scrapes as pinpoint_smt_query_ns;
//   - labeled registry entries (see Labeled) expose as one family: series
//     sharing a base name emit a single HELP/TYPE pair followed by every
//     label combination, and for summaries the quantile label merges into
//     the series' own label block;
//   - a # HELP line carries the original registry name (escaped per the
//     exposition format), keeping the dotted name greppable from scrape
//     output.
//
// Families are emitted counters-first, then gauges, then histograms, each
// block sorted by (base name, label block) — the output of a deterministic
// metric state is byte-stable, which the golden test pins down.

// WritePrometheus renders a lock-consistent snapshot of the recorder's
// metrics in the Prometheus text exposition format (version 0.0.4). A nil
// Recorder writes nothing and reports no error.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	_, err := r.Snapshot().WriteTo(w)
	return err
}

// WriteTo renders the snapshot in the Prometheus text exposition format,
// implementing io.WriterTo.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(cw, format, args...)
		return err
	}

	// Sort by (base, labels) so every series of a labeled family is
	// adjacent, then emit HELP/TYPE once per base.
	family := func(names []string, typ string, emit func(name string) error) error {
		sort.Slice(names, func(i, j int) bool {
			bi, li := SplitLabels(names[i])
			bj, lj := SplitLabels(names[j])
			if bi != bj {
				return bi < bj
			}
			return li < lj
		})
		prevBase := ""
		for _, name := range names {
			base, _ := SplitLabels(name)
			if base != prevBase {
				pn := PromName(base)
				if err := write("# HELP %s %s\n# TYPE %s %s\n", pn, escapeHelp(base), pn, typ); err != nil {
					return err
				}
				prevBase = base
			}
			if err := emit(name); err != nil {
				return err
			}
		}
		return nil
	}

	counterNames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		counterNames = append(counterNames, name)
	}
	err := family(counterNames, "counter", func(name string) error {
		return write("%s %d\n", promSeries(name), s.Counters[name])
	})
	if err != nil {
		return cw.n, err
	}

	gaugeNames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	err = family(gaugeNames, "gauge", func(name string) error {
		return write("%s %d\n", promSeries(name), s.Gauges[name])
	})
	if err != nil {
		return cw.n, err
	}

	floatNames := make([]string, 0, len(s.FloatGauges))
	for name := range s.FloatGauges {
		floatNames = append(floatNames, name)
	}
	err = family(floatNames, "gauge", func(name string) error {
		return write("%s %g\n", promSeries(name), s.FloatGauges[name])
	})
	if err != nil {
		return cw.n, err
	}

	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	err = family(histNames, "summary", func(name string) error {
		base, labels := SplitLabels(name)
		pn := PromName(base)
		h := s.Histograms[name]
		for _, q := range [...]struct {
			label string
			v     int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			var err error
			if labels == "" {
				err = write("%s{quantile=\"%s\"} %d\n", pn, q.label, q.v)
			} else {
				// Merge quantile into the series' own label block:
				// {phase="x"} → {phase="x",quantile="0.5"}.
				err = write("%s%s,quantile=\"%s\"} %d\n", pn, labels[:len(labels)-1], q.label, q.v)
			}
			if err != nil {
				return err
			}
		}
		if err := write("%s_sum%s %d\n", pn, labels, h.Sum); err != nil {
			return err
		}
		return write("%s_count%s %d\n", pn, labels, h.Count)
	})
	return cw.n, err
}

// promSeries renders a registry name as a full Prometheus series name:
// sanitized base plus the label block verbatim.
func promSeries(name string) string {
	base, labels := SplitLabels(name)
	if labels == "" {
		return PromName(base)
	}
	return PromName(base) + labels
}

// PromName sanitizes a registry metric name into a legal Prometheus metric
// name: the "pinpoint_" namespace prefix, with every character outside
// [a-zA-Z0-9_:] replaced by an underscore ("smt.query_ns" →
// "pinpoint_smt_query_ns").
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len("pinpoint_") + len(name))
	b.WriteString("pinpoint_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text per the exposition format: backslash and
// newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
