package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Sampler is the flight recorder: a fixed-memory time-series layer over a
// Recorder's registry. On every tick it snapshots each metric into a
// per-series ring buffer — counters and histogram counts as cumulative
// values (served as windowed rates), gauges and histogram quantiles as
// instantaneous values — so "what was the p95 five minutes ago" is
// answerable in-process without an external TSDB.
//
// Memory is bounded by construction: each series owns one preallocated
// ring of Capacity points, the series map grows only when a metric name
// appears for the first time (never per sample), and MaxSeries caps the
// map itself. A nil *Sampler is valid everywhere and does nothing, so a
// disabled flight recorder costs zero goroutines and zero allocations —
// the pre-recorder /metrics exposition stays byte-identical.
type Sampler struct {
	rec       *Recorder
	interval  time.Duration
	retention time.Duration
	capacity  int
	maxSeries int
	now       func() time.Time
	hooks     []func(now time.Time)

	mu      sync.Mutex
	series  map[string]*series
	dropped int64
	proc    ProcessSampler

	startMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}
}

// SamplerConfig parameterizes a Sampler.
type SamplerConfig struct {
	// Interval is the sampling period. Zero or negative disables the
	// sampler entirely: NewSampler returns nil (which every method
	// tolerates).
	Interval time.Duration
	// Retention is the time span each ring buffer covers; older samples
	// fall off. Zero means 10 minutes. The per-series capacity is
	// Retention/Interval, clamped to [2, 4096] points.
	Retention time.Duration
	// MaxSeries caps the number of distinct (metric, field) series the
	// sampler will track; series beyond the cap are counted as dropped
	// rather than allocated. Zero means 8192.
	MaxSeries int
}

// Series-count and ring-size bounds: the sampler's whole point is a fixed
// memory budget, so both dimensions clamp rather than grow.
const (
	defaultRetention = 10 * time.Minute
	defaultMaxSeries = 8192
	maxRingPoints    = 4096
)

// Point is one sample: a wall-clock timestamp (UnixNano) and a value. For
// cumulative series the query layer converts consecutive points into
// per-second rates before returning them.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// series is one metric field's ring buffer. cum marks cumulative series
// (counters, histogram counts) whose points are served as windowed rates.
type series struct {
	name  string // full registry name, labels included
	base  string
	field string // rate | value | p50 | p95 | p99 | count_rate
	kind  string // counter | gauge | histogram
	cum   bool
	ring  []Point
	head  int // next write slot
	n     int // filled count
}

func (s *series) push(p Point) {
	s.ring[s.head] = p
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// at returns the i-th oldest retained point (0 = oldest).
func (s *series) at(i int) Point {
	return s.ring[(s.head-s.n+i+2*len(s.ring))%len(s.ring)]
}

// NewSampler builds a flight recorder over rec's registry. It returns nil —
// the inert sampler — when rec is nil or the interval is unset.
func NewSampler(rec *Recorder, cfg SamplerConfig) *Sampler {
	if rec == nil || cfg.Interval <= 0 {
		return nil
	}
	retention := cfg.Retention
	if retention <= 0 {
		retention = defaultRetention
	}
	capacity := int(retention / cfg.Interval)
	if capacity < 2 {
		capacity = 2
	}
	if capacity > maxRingPoints {
		capacity = maxRingPoints
	}
	maxSeries := cfg.MaxSeries
	if maxSeries <= 0 {
		maxSeries = defaultMaxSeries
	}
	return &Sampler{
		rec:       rec,
		interval:  cfg.Interval,
		retention: retention,
		capacity:  capacity,
		maxSeries: maxSeries,
		now:       time.Now,
		series:    make(map[string]*series),
	}
}

// Interval reports the sampling period (0 for a nil Sampler).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Capacity reports the per-series ring size in points.
func (s *Sampler) Capacity() int {
	if s == nil {
		return 0
	}
	return s.capacity
}

// OnSample registers a hook run after every tick (the SLO tracker updates
// its burn-rate gauges here). Must be called before Start.
func (s *Sampler) OnSample(f func(now time.Time)) {
	if s == nil || f == nil {
		return
	}
	s.hooks = append(s.hooks, f)
}

// Start launches the sampling goroutine: one immediate sample (so queries
// and burn-rate baselines exist right away), then one per interval until
// Stop. Start on an already-started or nil Sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startMu.Lock()
	defer s.startMu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.SampleNow()
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.SampleNow()
			}
		}
	}(s.stop, s.done)
}

// Stop halts the sampling goroutine and waits for it to exit. Idempotent;
// the rings stay queryable afterwards.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.startMu.Lock()
	defer s.startMu.Unlock()
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
}

// SampleNow takes one synchronous sample: process self-metrics into the
// registry, then every registry metric into its ring. Tests (and the
// ticker goroutine) drive ticks through here.
func (s *Sampler) SampleNow() {
	if s == nil {
		return
	}
	now := s.now()
	t := now.UnixNano()
	s.mu.Lock()
	s.proc.Sample(s.rec)
	// The visitor runs under both s.mu and the registry's read lock; it
	// only reads metric values into sampler-owned rings (see Each's
	// contract), so the lock order s.mu > Registry.mu is acyclic.
	s.rec.Registry().Each(Visitor{
		Counter: func(name string, c *Counter) {
			s.record(t, name, "rate", "counter", true, float64(c.Value()))
		},
		Gauge: func(name string, g *Gauge) {
			s.record(t, name, "value", "gauge", false, float64(g.Value()))
		},
		FloatGauge: func(name string, g *FloatGauge) {
			s.record(t, name, "value", "gauge", false, g.Value())
		},
		Histogram: func(name string, h *Histogram) {
			s.record(t, name, "p50", "histogram", false, float64(h.Quantile(0.50)))
			s.record(t, name, "p95", "histogram", false, float64(h.Quantile(0.95)))
			s.record(t, name, "p99", "histogram", false, float64(h.Quantile(0.99)))
			s.record(t, name, "count_rate", "histogram", true, float64(h.Count()))
		},
	})
	s.mu.Unlock()
	for _, f := range s.hooks {
		f(now)
	}
}

// record pushes one point, creating the series on first appearance. Caller
// holds s.mu.
func (s *Sampler) record(t int64, name, field, kind string, cum bool, v float64) {
	key := name + "\x00" + field
	sr := s.series[key]
	if sr == nil {
		if len(s.series) >= s.maxSeries {
			s.dropped++
			return
		}
		base, _ := SplitLabels(name)
		sr = &series{
			name: name, base: base, field: field, kind: kind, cum: cum,
			ring: make([]Point, s.capacity),
		}
		s.series[key] = sr
	}
	sr.push(Point{T: t, V: v})
}

// Series is one metric field's retained points, as the query API returns
// them (rates already computed for cumulative series).
type Series struct {
	// Name is the full registry name, label block included; Base is the
	// name with labels stripped (what the metric query parameter matches).
	Name string `json:"name"`
	Base string `json:"base"`
	// Field distinguishes the per-metric series: "rate" (counter),
	// "value" (gauge), "p50"/"p95"/"p99"/"count_rate" (histogram).
	Field string `json:"field"`
	Kind  string `json:"kind"`
	// Unit names the point unit: "ns" for _ns quantiles, "per_second" for
	// rates, empty otherwise.
	Unit   string  `json:"unit,omitempty"`
	Points []Point `json:"points"`
}

// QueryResult is the Query payload (and the /v1/debug/timeseries body).
type QueryResult struct {
	IntervalNs  int64 `json:"intervalNs"`
	RetentionNs int64 `json:"retentionNs"`
	// Capacity is the fixed per-series ring size; no series ever holds
	// more points than this.
	Capacity int      `json:"capacity"`
	Series   []Series `json:"series"`
	// DroppedSeries counts samples discarded because the MaxSeries bound
	// was reached (0 in healthy configurations).
	DroppedSeries int64 `json:"droppedSeries,omitempty"`
}

// Query returns the retained series matching metric, with points at or
// after since. metric matches a series' base name or its full labeled
// name; empty matches everything. A zero since means the full retention.
// Series are sorted by (base, name, field); points are oldest-first.
// Cumulative series (counters, histogram counts) come back as per-second
// rates over each consecutive sample pair, so trends read directly.
func (s *Sampler) Query(metric string, since time.Time) QueryResult {
	if s == nil {
		return QueryResult{}
	}
	var sinceNs int64
	if !since.IsZero() {
		sinceNs = since.UnixNano()
	}
	s.mu.Lock()
	res := QueryResult{
		IntervalNs:    int64(s.interval),
		RetentionNs:   int64(s.retention),
		Capacity:      s.capacity,
		DroppedSeries: s.dropped,
	}
	for _, sr := range s.series {
		if metric != "" && metric != sr.base && metric != sr.name {
			continue
		}
		out := Series{Name: sr.name, Base: sr.base, Field: sr.field, Kind: sr.kind}
		switch {
		case sr.cum:
			out.Unit = "per_second"
		case strings.HasPrefix(sr.field, "p"):
			out.Unit = UnitOf(sr.base)
		}
		if sr.cum {
			// Rate between consecutive points; the predecessor may predate
			// `since` — it only serves as the delta baseline.
			for i := 1; i < sr.n; i++ {
				prev, cur := sr.at(i-1), sr.at(i)
				if cur.T < sinceNs {
					continue
				}
				dt := float64(cur.T-prev.T) / float64(time.Second)
				if dt <= 0 {
					continue
				}
				out.Points = append(out.Points, Point{T: cur.T, V: (cur.V - prev.V) / dt})
			}
		} else {
			for i := 0; i < sr.n; i++ {
				if p := sr.at(i); p.T >= sinceNs {
					out.Points = append(out.Points, p)
				}
			}
		}
		res.Series = append(res.Series, out)
	}
	s.mu.Unlock()
	sort.Slice(res.Series, func(i, j int) bool {
		a, b := &res.Series[i], &res.Series[j]
		if a.Base != b.Base {
			return a.Base < b.Base
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Field < b.Field
	})
	return res
}

// CounterDelta reports how much a cumulative series grew over the trailing
// window: the increase from the newest retained sample at or before
// (newest - window) — or the oldest retained sample if the ring doesn't
// reach back that far — to the newest sample, along with the actual time
// span covered. ok is false with fewer than two samples. The SLO tracker's
// burn rates are ratios of two of these deltas.
func (s *Sampler) CounterDelta(name string, window time.Duration) (delta float64, span time.Duration, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name+"\x00rate"]
	if sr == nil || sr.n < 2 {
		return 0, 0, false
	}
	newest := sr.at(sr.n - 1)
	cutoff := newest.T - int64(window)
	base := sr.at(0)
	for i := sr.n - 1; i >= 0; i-- {
		if p := sr.at(i); p.T <= cutoff {
			base = p
			break
		}
	}
	if newest.T <= base.T {
		return 0, 0, false
	}
	return newest.V - base.V, time.Duration(newest.T - base.T), true
}
