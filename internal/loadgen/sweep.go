package loadgen

import (
	"context"
	"fmt"
	"time"
)

// SweepPoint is one rung of a saturation sweep.
type SweepPoint struct {
	// Offered is the open-loop offered rate in requests/second.
	Offered float64 `json:"offered"`
	// Achieved is the measured successful throughput at that rate.
	Achieved float64 `json:"achieved"`
	// Summary is the full run summary for the rung.
	Summary Summary `json:"summary"`
}

// SweepResult is a saturation sweep: a ladder of open-loop runs at
// increasing offered rates, plus the located knee.
type SweepResult struct {
	Points []SweepPoint `json:"points"`
	// Knee is the highest offered rate the service kept up with: achieved
	// throughput at least kneeFraction of offered with zero errors. Zero
	// if the service kept up with no rung.
	Knee float64 `json:"knee"`
}

// kneeFraction is the achieved/offered ratio below which a rung counts as
// saturated.
const kneeFraction = 0.95

// Sweep runs spec's first client group open-loop (Poisson arrivals) at
// each rate in rates for stepDur apiece and locates the saturation knee.
// The ladder stops one rung after the first saturated point — past the
// knee every further rung only queues deeper and slows the sweep down.
func Sweep(ctx context.Context, spec *Spec, opts Options, rates []float64, stepDur time.Duration) (*SweepResult, error) {
	if len(spec.Clients) == 0 {
		return nil, fmt.Errorf("loadgen: sweep needs a client group")
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: sweep needs at least one rate")
	}
	res := &SweepResult{}
	for _, rate := range rates {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		rung := *spec
		rung.Name = fmt.Sprintf("%s@%.3g", spec.Name, rate)
		rung.Clients = []ClientSpec{spec.Clients[0]}
		rung.Clients[0].Arrival = ArrivalSpec{Process: "poisson", Rate: rate}
		rung.Clients[0].Requests = 0

		ropts := opts
		ropts.Duration = stepDur
		run, err := Run(ctx, &rung, ropts)
		if err != nil {
			return res, err
		}
		sum := Summarize(run)
		pt := SweepPoint{Offered: rate, Achieved: achievedRate(run), Summary: sum}
		res.Points = append(res.Points, pt)
		keptUp := sum.Errors == 0 && pt.Achieved >= kneeFraction*rate
		if keptUp && rate > res.Knee {
			res.Knee = rate
		}
		if !keptUp {
			break
		}
	}
	return res, nil
}
