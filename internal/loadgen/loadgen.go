// Package loadgen is a declarative load harness for the analysis service:
// it drives POST /v1/analyze with synthetic workload subjects under
// configurable arrival processes and reports per-request latency samples,
// exact percentile summaries, and the server's own phase-attributed timing
// breakdown next to each client-observed latency.
//
// A run is described by a Spec: one workload subject (the program under
// analysis) plus one or more client groups, each with its own arrival
// process, request mutation mode, and checker set. The harness supports
// the two canonical load-generation disciplines:
//
//   - closed-loop: Count clients issue a request, wait for the response,
//     think, repeat — throughput adapts to server latency, modeling a
//     fixed population of IDE sessions;
//   - open-loop (poisson/uniform/burst): arrivals fire on a schedule that
//     ignores completions, modeling independent external traffic — the
//     discipline that exposes queueing collapse, since offered load does
//     not slow down when the server does.
//
// Mutation modes control what the server's incremental session sees:
// "none" re-sends an identical program (pure warm path), "edit" perturbs
// one driver-function body per request (the single-function incremental
// path), and "fresh" rotates the generator seed (full rebuild per
// distinct body).
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/minic"
	"repro/internal/workload"
)

// Spec declares one load scenario.
type Spec struct {
	// Name labels the scenario in summaries and snapshots.
	Name string `json:"name"`
	// Subject is the analyzed program.
	Subject SubjectSpec `json:"subject"`
	// Clients are the concurrent client groups.
	Clients []ClientSpec `json:"clients"`
	// SubjectOverride, when non-nil, bypasses Subject.Name resolution —
	// in-process harnesses (bench.MeasureServe) pass synthetic subjects
	// that have no workload registry entry.
	SubjectOverride *workload.Subject `json:"-"`
}

// SubjectSpec selects and sizes the workload program.
type SubjectSpec struct {
	// Name is a workload.Subjects entry, or empty for the default
	// synthetic bench subject.
	Name string `json:"name,omitempty"`
	// Scale is workload.GenOptions.Scale (generated lines per paper
	// KLoC); 0 keeps the bench default of 30.
	Scale int `json:"scale,omitempty"`
	// Seed perturbs generation; 0 derives from the subject name.
	Seed int64 `json:"seed,omitempty"`
	// Taint injects the taint-flow workloads too.
	Taint bool `json:"taint,omitempty"`
}

// ClientSpec is one homogeneous group of load clients.
type ClientSpec struct {
	// ID labels the group in samples ("warm", "editor", ...).
	ID string `json:"id"`
	// Project routes this group's requests to a per-project tenant
	// session on the server. Empty means the default tenant — the
	// pre-tenant wire format, byte-identical request bodies. Groups with
	// distinct projects exercise cross-tenant concurrency.
	Project string `json:"project,omitempty"`
	// SubjectSeed perturbs the workload generator seed for this group,
	// modeling a distinct project codebase: groups with different
	// SubjectSeeds send different programs. 0 shares the spec's subject.
	SubjectSeed int64 `json:"subjectSeed,omitempty"`
	// Count is the number of concurrent clients (closed) or parallel
	// arrival streams (open); 0 means 1.
	Count int `json:"count,omitempty"`
	// Requests bounds the total requests this group issues; 0 means
	// bounded by the run duration alone.
	Requests int `json:"requests,omitempty"`
	// Arrival is the group's arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Mutate is the request mutation mode: "none" (default), "edit", or
	// "fresh".
	Mutate string `json:"mutate,omitempty"`
	// Checkers selects detectors per request (empty = all).
	Checkers []string `json:"checkers,omitempty"`
	// Witness requests per-report provenance.
	Witness bool `json:"witness,omitempty"`
}

// ArrivalSpec describes when a group's requests fire.
type ArrivalSpec struct {
	// Process is "closed" (default), "poisson", "uniform", or "burst".
	Process string `json:"process,omitempty"`
	// Rate is the offered arrival rate in requests/second for the open
	// processes (per group, across all its streams).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the arrivals per burst for the burst process (bursts fire
	// at Rate/Burst per second so the offered rate stays Rate).
	Burst int `json:"burst,omitempty"`
	// ThinkMs is the closed-loop think time between a response and the
	// next request, in milliseconds.
	ThinkMs int64 `json:"thinkMs,omitempty"`
}

func (c ClientSpec) count() int {
	if c.Count <= 0 {
		return 1
	}
	return c.Count
}

// Validate rejects specs the runner cannot execute.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("loadgen: spec has no name")
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("loadgen: spec %q has no client groups", s.Name)
	}
	for i, c := range s.Clients {
		if c.ID == "" {
			return fmt.Errorf("loadgen: spec %q: client group %d has no id", s.Name, i)
		}
		switch c.Mutate {
		case "", "none", "edit", "fresh":
		default:
			return fmt.Errorf("loadgen: spec %q: client %q: unknown mutate mode %q", s.Name, c.ID, c.Mutate)
		}
		switch p := c.Arrival.Process; p {
		case "", "closed":
		case "poisson", "uniform", "burst":
			if c.Arrival.Rate <= 0 {
				return fmt.Errorf("loadgen: spec %q: client %q: %s arrivals need rate > 0", s.Name, c.ID, p)
			}
		default:
			return fmt.Errorf("loadgen: spec %q: client %q: unknown arrival process %q", s.Name, c.ID, p)
		}
	}
	return nil
}

// LoadSpec reads a Spec from a JSON file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Builtin returns a named built-in scenario. The three canonical mixes —
// cold builds, warm single-function edits, burst arrivals — mirror the
// service's expected traffic shapes; "mixed" runs an editing client
// against a background warm poller with disjoint checker sets.
func Builtin(name string) (*Spec, bool) {
	scenarios := map[string]*Spec{
		"warm": {
			Name: "warm",
			Clients: []ClientSpec{{
				ID: "warm", Arrival: ArrivalSpec{Process: "closed"},
			}},
		},
		"cold": {
			Name: "cold",
			Clients: []ClientSpec{{
				ID: "cold", Mutate: "fresh", Arrival: ArrivalSpec{Process: "closed"},
			}},
		},
		"edit": {
			Name: "edit",
			Clients: []ClientSpec{{
				ID: "editor", Mutate: "edit", Arrival: ArrivalSpec{Process: "closed"},
			}},
		},
		"burst": {
			Name: "burst",
			Clients: []ClientSpec{{
				ID: "burst", Mutate: "edit",
				Arrival: ArrivalSpec{Process: "burst", Rate: 8, Burst: 4},
			}},
		},
		"mixed": {
			Name: "mixed",
			Clients: []ClientSpec{
				{ID: "editor", Mutate: "edit", Checkers: []string{"use-after-free", "null-deref"},
					Arrival: ArrivalSpec{Process: "closed", ThinkMs: 50}},
				{ID: "poller", Checkers: []string{"memory-leak"},
					Arrival: ArrivalSpec{Process: "uniform", Rate: 2}},
			},
		},
		// tenants: two editing clients on different projects with different
		// codebases (distinct SubjectSeeds) — with the tenant layer each
		// project keeps its own warm sticky session and their builds and
		// detects overlap. Compare against tenants-serial (identical
		// request bodies, no project routing) where both codebases thrash
		// one session's sticky cache the way the pre-tenant single-mutex
		// server forced them to.
		"tenants": {
			Name: "tenants",
			Clients: []ClientSpec{
				{ID: "alpha", Project: "alpha", Mutate: "edit", Arrival: ArrivalSpec{Process: "closed"}},
				{ID: "beta", Project: "beta", SubjectSeed: 9973, Mutate: "edit", Arrival: ArrivalSpec{Process: "closed"}},
			},
		},
		"tenants-serial": {
			Name: "tenants-serial",
			Clients: []ClientSpec{
				{ID: "alpha", Mutate: "edit", Arrival: ArrivalSpec{Process: "closed"}},
				{ID: "beta", SubjectSeed: 9973, Mutate: "edit", Arrival: ArrivalSpec{Process: "closed"}},
			},
		},
	}
	s, ok := scenarios[name]
	return s, ok
}

// BuiltinNames lists the built-in scenario names.
func BuiltinNames() []string {
	return []string{"warm", "cold", "edit", "burst", "mixed", "tenants", "tenants-serial"}
}

// subject resolves the spec's workload subject.
func (s *Spec) subject() (workload.Subject, workload.GenOptions) {
	subj := workload.Subject{
		Name: "bench-serve", Origin: "synthetic", PaperKLoC: 60,
		TrueBugs: 6, OpaqueTraps: 4,
	}
	if s.SubjectOverride != nil {
		subj = *s.SubjectOverride
	} else if s.Subject.Name != "" {
		if named, ok := workload.SubjectByName(s.Subject.Name); ok {
			subj = named
		}
	}
	scale := s.Subject.Scale
	if scale == 0 {
		scale = 30
	}
	return subj, workload.GenOptions{Scale: scale, Seed: s.Subject.Seed, Taint: s.Subject.Taint}
}

// editUnit inserts a distinct statement after the driver-function opening
// line of unit u (the bench incremental-edit idiom): the n-th edit yields
// a body different from the (n-1)-th, so consecutive requests dirty
// exactly one function each.
func editUnit(u minic.NamedSource, n int) minic.NamedSource {
	lines := strings.Split(u.Src, "\n")
	for i, ln := range lines {
		if strings.HasPrefix(ln, "void drive_") {
			stmt := fmt.Sprintf("\tseed = seed + %d;", n%1021+1)
			lines = append(lines[:i+1], append([]string{stmt}, lines[i+1:]...)...)
			return minic.NamedSource{Name: u.Name, Src: strings.Join(lines, "\n")}
		}
	}
	return u
}
