package loadgen

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/minic"
	"repro/internal/server"
)

// startServer brings up an in-process analysis service and returns its
// base URL.
func startServer(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// smallSpec is a fast single-group scenario for tests.
func smallSpec(id, mutate string, requests int) *Spec {
	return &Spec{
		Name:    "test-" + id,
		Subject: SubjectSpec{Scale: 4},
		Clients: []ClientSpec{{
			ID: id, Mutate: mutate, Requests: requests,
			Arrival: ArrivalSpec{Process: "closed"},
		}},
	}
}

func TestRunClosedLoop(t *testing.T) {
	url := startServer(t)
	spec := smallSpec("warm", "none", 4)
	res, err := Run(context.Background(), spec, Options{BaseURL: url, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(res.Samples))
	}
	for i := range res.Samples {
		s := &res.Samples[i]
		if !s.OK() {
			t.Fatalf("sample %d failed: status=%d err=%q", i, s.Status, s.Err)
		}
		if s.Timing.TotalNs <= 0 {
			t.Errorf("sample %d: timing.totalNs = %d, want > 0", i, s.Timing.TotalNs)
		}
		if s.LatencyNs <= 0 {
			t.Errorf("sample %d: latencyNs = %d, want > 0", i, s.LatencyNs)
		}
	}

	sum := Summarize(res)
	if sum.Requests != 4 || sum.Errors != 0 {
		t.Errorf("summary requests=%d errors=%d, want 4/0", sum.Requests, sum.Errors)
	}
	l := sum.Latency
	if !(l.Min <= l.P50 && l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.Max) {
		t.Errorf("percentiles not monotone: %+v", l)
	}
	if sum.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", sum.Throughput)
	}
	if sum.PhaseMeanNs["build"] <= 0 || sum.PhaseMeanNs["detect"] <= 0 {
		t.Errorf("phase means missing build/detect: %v", sum.PhaseMeanNs)
	}
	// The server's breakdown cannot attribute more than the client saw
	// by a wide margin, nor explain less than nothing.
	if g := sum.AttributionGap; g.Mean >= 1 || g.Max >= 1 {
		t.Errorf("attribution gap out of range: %+v", g)
	}
	if len(sum.Groups) != 1 || sum.Groups[0].Client != "warm" || sum.Groups[0].Requests != 4 {
		t.Errorf("bad group summary: %+v", sum.Groups)
	}
}

func TestRunMutations(t *testing.T) {
	url := startServer(t)
	for _, mode := range []string{"edit", "fresh"} {
		spec := smallSpec(mode, mode, 3)
		res, err := Run(context.Background(), spec, Options{BaseURL: url, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(res.Samples) != 3 {
			t.Fatalf("%s: got %d samples, want 3", mode, len(res.Samples))
		}
		for i := range res.Samples {
			if s := &res.Samples[i]; !s.OK() {
				t.Fatalf("%s: sample %d failed: status=%d err=%q", mode, i, s.Status, s.Err)
			}
		}
	}
}

func TestRunOpenLoopBurst(t *testing.T) {
	url := startServer(t)
	spec := &Spec{
		Name:    "test-burst",
		Subject: SubjectSpec{Scale: 4},
		Clients: []ClientSpec{{
			ID: "burst", Requests: 6,
			Arrival: ArrivalSpec{Process: "burst", Rate: 60, Burst: 3},
		}},
	}
	res, err := Run(context.Background(), spec, Options{
		BaseURL: url, Duration: 10 * time.Second, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 6 {
		t.Fatalf("got %d samples, want 6", len(res.Samples))
	}
	if res.Offered != 60 {
		t.Errorf("offered = %v, want 60", res.Offered)
	}
	for i := range res.Samples {
		if s := &res.Samples[i]; !s.OK() {
			t.Fatalf("sample %d failed: status=%d err=%q", i, s.Status, s.Err)
		}
	}
}

func TestEditUnitMakesDistinctBodies(t *testing.T) {
	u := minic.NamedSource{Name: "u.mc", Src: "int x;\nvoid drive_a_0(int seed, bool flag) {\n\tx = 1;\n}\n"}
	e1, e2 := editUnit(u, 1), editUnit(u, 2)
	if e1.Src == u.Src {
		t.Fatal("edit 1 did not change the unit")
	}
	if e1.Src == e2.Src {
		t.Fatal("edits 1 and 2 produced identical bodies")
	}
	if !strings.Contains(e1.Src, "seed = seed +") {
		t.Fatalf("edit missing inserted statement:\n%s", e1.Src)
	}
}

func TestLatencySummaryExactPercentiles(t *testing.T) {
	s := latencySummary([]int64{5, 1, 4, 2, 3})
	want := LatencyNs{Min: 1, Mean: 3, P50: 3, P95: 5, P99: 5, Max: 5}
	if s != want {
		t.Errorf("got %+v, want %+v", s, want)
	}
	if got := latencySummary(nil); got != (LatencyNs{}) {
		t.Errorf("empty summary = %+v, want zero", got)
	}
	// 100 samples: p99 is exactly the 99th value.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	s = latencySummary(vals)
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("p50/p95/p99 = %d/%d/%d, want 50/95/99", s.P50, s.P95, s.P99)
	}
}

func TestWriteCSV(t *testing.T) {
	r := &Result{
		Spec:    smallSpec("x", "none", 1),
		Elapsed: time.Second,
		Samples: []Sample{
			{Client: "x", Seq: 0, LatencyNs: 100, Status: 200},
			{Client: "x", Seq: 1, LatencyNs: 200, Status: 503, Err: "saturated"},
		},
	}
	var b strings.Builder
	if err := WriteCSV(&b, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want 3 (header + 2 rows):\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "client,seq,start_ns,latency_ns,status,ok") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"saturated"`) {
		t.Errorf("error row missing err field: %s", lines[2])
	}
}

func TestBuiltinScenariosValidate(t *testing.T) {
	for _, name := range BuiltinNames() {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
	}
	if _, ok := Builtin("nope"); ok {
		t.Error("unknown builtin resolved")
	}
}

func TestLoadSpec(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{
		"name": "custom",
		"subject": {"scale": 4},
		"clients": [
			{"id": "a", "arrival": {"process": "poisson", "rate": 2}},
			{"id": "b", "mutate": "edit", "arrival": {"thinkMs": 10}}
		]
	}`), 0o644)
	s, err := LoadSpec(good)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" || len(s.Clients) != 2 || s.Clients[0].Arrival.Rate != 2 {
		t.Errorf("bad parse: %+v", s)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name": "x", "clients": [{"id": "a", "arrival": {"process": "warp"}}]}`), 0o644)
	if _, err := LoadSpec(bad); err == nil {
		t.Error("unknown arrival process accepted")
	}
	unknown := filepath.Join(dir, "unknown.json")
	os.WriteFile(unknown, []byte(`{"name": "x", "clients": [{"id": "a"}], "bogus": 1}`), 0o644)
	if _, err := LoadSpec(unknown); err == nil {
		t.Error("unknown top-level field accepted")
	}
}

func TestSweepShortLadder(t *testing.T) {
	url := startServer(t)
	spec := smallSpec("sweep", "none", 0)
	// Warm the session once so the sweep measures steady state.
	warm := smallSpec("warmup", "none", 1)
	if _, err := Run(context.Background(), warm, Options{BaseURL: url, Timeout: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(context.Background(), spec, Options{BaseURL: url, Timeout: 30 * time.Second},
		[]float64{4}, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d sweep points, want 1", len(res.Points))
	}
	pt := res.Points[0]
	if pt.Offered != 4 {
		t.Errorf("offered = %v, want 4", pt.Offered)
	}
	if pt.Summary.Errors > 0 {
		t.Errorf("sweep rung had %d errors", pt.Summary.Errors)
	}
}

func TestEvalSLO(t *testing.T) {
	mk := func(lats ...int64) *Result {
		r := &Result{Spec: smallSpec("x", "none", 1)}
		for i, l := range lats {
			r.Samples = append(r.Samples, Sample{
				Client: "c", Seq: i, LatencyNs: l, Status: 200,
			})
		}
		return r
	}

	// 10 samples, 2 over a 100ns target at p0.9: violation rate 0.2 on a
	// 0.1 budget → burn 2, objective violated.
	r := mk(10, 20, 30, 40, 50, 60, 70, 80, 150, 200)
	rep := EvalSLO(r, 100, 0.9)
	if rep.Violations != 2 || rep.ViolationRate != 0.2 {
		t.Fatalf("violations = %d @ %g, want 2 @ 0.2", rep.Violations, rep.ViolationRate)
	}
	if rep.BurnRate < 1.999 || rep.BurnRate > 2.001 || rep.Met {
		t.Errorf("burn = %g met=%v, want 2 and violated", rep.BurnRate, rep.Met)
	}
	if rep.QuantileNs != 150 {
		t.Errorf("p90 = %d, want 150 (nearest rank of 10 samples)", rep.QuantileNs)
	}

	// All within target: zero burn, met.
	rep = EvalSLO(mk(10, 20, 30), 100, 0.9)
	if rep.BurnRate != 0 || !rep.Met || rep.Violations != 0 {
		t.Errorf("clean run: %+v", rep)
	}

	// Failed samples don't count toward the objective.
	r = mk(10)
	r.Samples = append(r.Samples, Sample{Client: "c", Seq: 9, LatencyNs: 10_000, Status: 503})
	rep = EvalSLO(r, 100, 0.9)
	if rep.Violations != 0 || !rep.Met {
		t.Errorf("errored sample counted: %+v", rep)
	}

	// No successes at all: zero everything, trivially met, finite.
	rep = EvalSLO(&Result{Spec: smallSpec("x", "none", 1)}, 100, 0.9)
	if !rep.Met || rep.BurnRate != 0 {
		t.Errorf("empty run: %+v", rep)
	}

	// Out-of-range quantile normalizes to 0.95.
	if rep = EvalSLO(mk(1), 100, 7); rep.Quantile != 0.95 {
		t.Errorf("quantile normalized to %g, want 0.95", rep.Quantile)
	}
}
