package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// LatencyNs summarizes a latency distribution with exact (sort-based,
// nearest-rank) percentiles — no bucketing error, since the harness keeps
// every sample.
type LatencyNs struct {
	Min  int64 `json:"min"`
	Mean int64 `json:"mean"`
	P50  int64 `json:"p50"`
	P95  int64 `json:"p95"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
}

// latencySummary computes exact percentiles over vals (unsorted, not
// modified). Zero value for an empty input.
func latencySummary(vals []int64) LatencyNs {
	if len(vals) == 0 {
		return LatencyNs{}
	}
	s := make([]int64, len(vals))
	copy(s, vals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum int64
	for _, v := range s {
		sum += v
	}
	return LatencyNs{
		Min:  s[0],
		Mean: sum / int64(len(s)),
		P50:  nearestRank(s, 0.50),
		P95:  nearestRank(s, 0.95),
		P99:  nearestRank(s, 0.99),
		Max:  s[len(s)-1],
	}
}

// nearestRank returns the q-th percentile of sorted s by the nearest-rank
// definition: the smallest value with at least ceil(q*n) samples at or
// below it.
func nearestRank(s []int64, q float64) int64 {
	n := len(s)
	rank := int(q*float64(n) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s[rank-1]
}

// GroupSummary is one client group's slice of the run.
type GroupSummary struct {
	Client   string    `json:"client"`
	Requests int       `json:"requests"`
	Errors   int       `json:"errors"`
	Latency  LatencyNs `json:"latencyNs"`
}

// Summary is the aggregate view of one Result.
type Summary struct {
	Scenario  string  `json:"scenario"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"errorRate"`
	ElapsedNs int64   `json:"elapsedNs"`
	// Throughput is successful requests per second.
	Throughput float64 `json:"throughput"`
	// Offered is the open-loop offered rate (0 for closed-loop runs).
	Offered float64 `json:"offered,omitempty"`
	// Latency covers successful requests only.
	Latency LatencyNs `json:"latencyNs"`
	// PhaseMeanNs is the mean server-side time per phase over successes,
	// keyed by the same phase names as server.phase_ns{phase=...}.
	PhaseMeanNs map[string]int64 `json:"phaseMeanNs"`
	// AttributionGap is the fraction of client-observed latency the
	// server's timing breakdown does not account for
	// ((latency - totalNs) / latency), summarized over successes. Small
	// values mean the phase attribution explains what clients feel.
	AttributionGap GapStats `json:"attributionGap"`
	// SLO is the run's latency-objective evaluation (EvalSLO); nil when no
	// objective was requested.
	SLO *SLOReport `json:"slo,omitempty"`
	// Groups breaks the run down per client group.
	Groups []GroupSummary `json:"groups"`
}

// SLOReport evaluates a latency objective over one run's successful
// samples, mirroring the server's own burn-rate math (internal/server's
// /v1/debug/slo): burn = violation rate / error budget, where the budget
// is the objective quantile's complement. A burn above 1 means the run
// violated the objective.
type SLOReport struct {
	// TargetNs and Quantile state the objective: the Quantile fraction of
	// requests must finish within TargetNs.
	TargetNs int64   `json:"targetNs"`
	Quantile float64 `json:"quantile"`
	// QuantileNs is the achieved latency at the objective quantile.
	QuantileNs int64 `json:"quantileNs"`
	// Violations counts successful requests slower than the target.
	Violations    int64   `json:"violations"`
	ViolationRate float64 `json:"violationRate"`
	BurnRate      float64 `json:"burnRate"`
	// Met reports BurnRate <= 1 — the run stayed inside the objective's
	// error budget.
	Met bool `json:"met"`
}

// EvalSLO evaluates the (target, quantile) latency objective over r's
// successful samples. A quantile outside (0,1) means 0.95.
func EvalSLO(r *Result, target int64, quantile float64) SLOReport {
	if quantile <= 0 || quantile >= 1 {
		quantile = 0.95
	}
	rep := SLOReport{TargetNs: target, Quantile: quantile, Met: true}
	var lats []int64
	for i := range r.Samples {
		s := &r.Samples[i]
		if !s.OK() {
			continue
		}
		lats = append(lats, s.LatencyNs)
		if s.LatencyNs > target {
			rep.Violations++
		}
	}
	if len(lats) == 0 {
		return rep
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.QuantileNs = nearestRank(lats, quantile)
	rep.ViolationRate = float64(rep.Violations) / float64(len(lats))
	rep.BurnRate = rep.ViolationRate / (1 - quantile)
	rep.Met = rep.BurnRate <= 1
	return rep
}

// GapStats summarizes the client-vs-server attribution gap.
type GapStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	Max  float64 `json:"max"`
}

// Summarize aggregates a Result into percentile and phase statistics.
func Summarize(r *Result) Summary {
	sum := Summary{
		Scenario:  r.Spec.Name,
		Requests:  len(r.Samples),
		ElapsedNs: r.Elapsed.Nanoseconds(),
		Offered:   r.Offered,
	}
	var (
		lats      []int64
		gaps      []float64
		phaseSums = map[string]int64{}
		perGroup  = map[string]*GroupSummary{}
		groupLats = map[string][]int64{}
	)
	for i := range r.Samples {
		s := &r.Samples[i]
		g := perGroup[s.Client]
		if g == nil {
			g = &GroupSummary{Client: s.Client}
			perGroup[s.Client] = g
		}
		g.Requests++
		if !s.OK() {
			sum.Errors++
			g.Errors++
			continue
		}
		lats = append(lats, s.LatencyNs)
		groupLats[s.Client] = append(groupLats[s.Client], s.LatencyNs)
		t := s.Timing
		for _, p := range []struct {
			name string
			v    int64
		}{
			{"decode", t.DecodeNs}, {"queue_wait", t.QueueWaitNs},
			{"session_wait", t.SessionWaitNs}, {"build", t.BuildNs},
			{"parse", t.ParseNs}, {"store_load", t.StoreLoadNs},
			{"store_save", t.StoreSaveNs}, {"detect", t.DetectNs},
			{"smt", t.SMTNs}, {"other", t.OtherNs},
		} {
			phaseSums[p.name] += p.v
		}
		if s.LatencyNs > 0 {
			gap := float64(s.LatencyNs-t.TotalNs) / float64(s.LatencyNs)
			if isFinite(gap) {
				gaps = append(gaps, gap)
			}
		}
	}
	ok := len(lats)
	sum.Latency = latencySummary(lats)
	if sum.Requests > 0 {
		sum.ErrorRate = float64(sum.Errors) / float64(sum.Requests)
	}
	if r.Elapsed > 0 {
		sum.Throughput = float64(ok) / r.Elapsed.Seconds()
	}
	sum.PhaseMeanNs = map[string]int64{}
	for name, total := range phaseSums {
		if ok > 0 {
			sum.PhaseMeanNs[name] = total / int64(ok)
		}
	}
	if len(gaps) > 0 {
		sort.Float64s(gaps)
		var gsum float64
		for _, g := range gaps {
			gsum += g
		}
		sum.AttributionGap = GapStats{
			Mean: gsum / float64(len(gaps)),
			P50:  gaps[(len(gaps)-1)/2],
			Max:  gaps[len(gaps)-1],
		}
	}
	names := make([]string, 0, len(perGroup))
	for name := range perGroup {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := perGroup[name]
		g.Latency = latencySummary(groupLats[name])
		sum.Groups = append(sum.Groups, *g)
	}
	return sum
}

// WriteCSV writes one row per sample: the client-side observation plus
// the server's full phase breakdown, all durations in nanoseconds.
func WriteCSV(w io.Writer, r *Result) error {
	if _, err := fmt.Fprintln(w, "client,seq,start_ns,latency_ns,status,ok,reports,"+
		"total_ns,decode_ns,queue_wait_ns,session_wait_ns,build_ns,parse_ns,"+
		"store_load_ns,store_save_ns,detect_ns,smt_ns,other_ns,err"); err != nil {
		return err
	}
	for i := range r.Samples {
		s := &r.Samples[i]
		ok := 0
		if s.OK() {
			ok = 1
		}
		t := s.Timing
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%q\n",
			s.Client, s.Seq, s.StartNs, s.LatencyNs, s.Status, ok, s.Reports,
			t.TotalNs, t.DecodeNs, t.QueueWaitNs, t.SessionWaitNs, t.BuildNs,
			t.ParseNs, t.StoreLoadNs, t.StoreSaveNs, t.DetectNs, t.SMTNs,
			t.OtherNs, s.Err); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummaryJSON writes the summary as indented JSON.
func WriteSummaryJSON(w io.Writer, s Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
