package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/minic"
	"repro/internal/server"
	"repro/internal/workload"
)

// Options parameterize one load run.
type Options struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8972".
	BaseURL string
	// Duration bounds the run's wall clock. Zero is allowed only when
	// every client group sets Requests (the run ends when budgets drain).
	Duration time.Duration
	// Timeout is the per-request deadline (default 60s).
	Timeout time.Duration
	// Seed drives the arrival-process randomness (default 1), so runs
	// with the same spec and seed offer the same schedule.
	Seed int64
	// Client overrides the HTTP client (default: fresh client with
	// per-request timeouts from Timeout).
	Client *http.Client
}

// Sample is one request as the client observed it, paired with the
// server's own phase attribution for the same request.
type Sample struct {
	// Client is the issuing group's ID.
	Client string `json:"client"`
	// Seq numbers the request within its group.
	Seq int `json:"seq"`
	// StartNs is the request start, as an offset from the run start.
	StartNs int64 `json:"startNs"`
	// LatencyNs is the client-observed round-trip latency.
	LatencyNs int64 `json:"latencyNs"`
	// Status is the HTTP status (0 on transport error).
	Status int `json:"status"`
	// Err is the transport or server error, if any.
	Err string `json:"err,omitempty"`
	// Reports is the number of bug reports in the response.
	Reports int `json:"reports"`
	// Timing is the server's phase breakdown for this request.
	Timing server.TimingJSON `json:"timing"`
}

// OK reports whether the request succeeded.
func (s *Sample) OK() bool { return s.Err == "" && s.Status == http.StatusOK }

// Result is one executed run.
type Result struct {
	Spec    *Spec         `json:"spec"`
	Elapsed time.Duration `json:"elapsedNs"`
	// Offered is the total offered rate of the open-loop groups in
	// requests/second (0 when all groups are closed-loop).
	Offered float64  `json:"offered"`
	Samples []Sample `json:"samples"`
}

// Run executes spec against the service at opts.BaseURL and returns every
// per-request sample. The run ends when opts.Duration elapses, all request
// budgets drain, or ctx is canceled — whichever comes first.
func Run(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: no base URL")
	}
	if opts.Duration <= 0 {
		for _, c := range spec.Clients {
			if c.Requests <= 0 {
				return nil, fmt.Errorf("loadgen: spec %q: client %q needs a request budget when the run has no duration", spec.Name, c.ID)
			}
		}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 60 * time.Second
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	httpc := opts.Client
	if httpc == nil {
		httpc = &http.Client{}
	}

	subj, gen := spec.subject()
	base := workload.Generate(subj, gen)

	runCtx := ctx
	var cancel context.CancelFunc
	if opts.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	res := &Result{Spec: spec}
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		start   = time.Now()
		url     = strings.TrimRight(opts.BaseURL, "/") + "/v1/analyze"
		collect = func(s Sample) {
			mu.Lock()
			res.Samples = append(res.Samples, s)
			mu.Unlock()
		}
	)
	for gi := range spec.Clients {
		c := &spec.Clients[gi]
		ggen, gbase := gen, base
		if c.SubjectSeed != 0 {
			// This group models a distinct project: regenerate the subject
			// under the group's seed so its program differs from the other
			// groups' (unit bodies diverge; unit names stay shared, so on a
			// shared session each alternation invalidates the sticky cache
			// the way alternating real projects would).
			ggen.Seed += c.SubjectSeed
			gbase = workload.Generate(subj, ggen)
		}
		g := &group{
			spec:    c,
			subject: subj,
			gen:     ggen,
			base:    gbase,
			url:     url,
			httpc:   httpc,
			timeout: opts.Timeout,
			start:   start,
			collect: collect,
		}
		if c.Requests > 0 {
			g.budget = new(atomic.Int64)
			g.budget.Store(int64(c.Requests))
		}
		switch c.Arrival.Process {
		case "", "closed":
		default:
			res.Offered += c.Arrival.Rate
		}
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			g.run(runCtx, seed)
		}(opts.Seed + int64(gi)*7919)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// group is one executing client group.
type group struct {
	spec    *ClientSpec
	subject workload.Subject
	gen     workload.GenOptions
	base    *workload.Generated
	url     string
	httpc   *http.Client
	timeout time.Duration
	start   time.Time
	collect func(Sample)
	budget  *atomic.Int64 // nil = unbounded
	seq     atomic.Int64

	freshOnce sync.Once
	fresh     []json.RawMessage
}

// take claims one request slot from the group's budget.
func (g *group) take() (int, bool) {
	if g.budget != nil && g.budget.Add(-1) < 0 {
		return 0, false
	}
	return int(g.seq.Add(1) - 1), true
}

func (g *group) run(ctx context.Context, seed int64) {
	switch g.spec.Arrival.Process {
	case "", "closed":
		g.runClosed(ctx)
	default:
		g.runOpen(ctx, seed)
	}
}

// runClosed drives Count synchronous clients: request, think, repeat.
func (g *group) runClosed(ctx context.Context) {
	think := time.Duration(g.spec.Arrival.ThinkMs) * time.Millisecond
	var wg sync.WaitGroup
	for w := 0; w < g.spec.count(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				seq, ok := g.take()
				if !ok {
					return
				}
				g.do(ctx, seq)
				if think > 0 {
					select {
					case <-time.After(think):
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runOpen fires arrivals on a schedule that ignores completions: each
// arrival gets its own goroutine, so a slow server faces the full offered
// load instead of implicitly throttling the client.
func (g *group) runOpen(ctx context.Context, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rate := g.spec.Arrival.Rate
	burst := g.spec.Arrival.Burst
	if burst <= 0 {
		burst = 1
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	for ctx.Err() == nil {
		var gap time.Duration
		switch g.spec.Arrival.Process {
		case "poisson":
			gap = time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		case "uniform":
			gap = time.Duration(float64(time.Second) / rate)
		case "burst":
			// Bursts of `burst` simultaneous arrivals, spaced so the
			// long-run offered rate stays Rate.
			gap = time.Duration(float64(burst) / rate * float64(time.Second))
		}
		select {
		case <-time.After(gap):
		case <-ctx.Done():
			return
		}
		n := 1
		if g.spec.Arrival.Process == "burst" {
			n = burst
		}
		for i := 0; i < n; i++ {
			seq, ok := g.take()
			if !ok {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.do(ctx, seq)
			}()
		}
	}
}

// do issues request seq and records its sample.
func (g *group) do(ctx context.Context, seq int) {
	body, err := g.payload(seq)
	s := Sample{Client: g.spec.ID, Seq: seq, StartNs: time.Since(g.start).Nanoseconds()}
	if err != nil {
		s.Err = err.Error()
		g.collect(s)
		return
	}
	rctx, cancel := context.WithTimeout(ctx, g.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, g.url, bytes.NewReader(body))
	if err != nil {
		s.Err = err.Error()
		g.collect(s)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := g.httpc.Do(req)
	if err != nil {
		s.LatencyNs = time.Since(t0).Nanoseconds()
		s.Err = err.Error()
		g.collect(s)
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	s.LatencyNs = time.Since(t0).Nanoseconds()
	s.Status = resp.StatusCode
	switch {
	case err != nil:
		s.Err = err.Error()
	case resp.StatusCode != http.StatusOK:
		s.Err = strings.TrimSpace(string(data))
	default:
		var ar server.AnalyzeResponse
		if err := json.Unmarshal(data, &ar); err != nil {
			s.Err = "bad response body: " + err.Error()
		} else {
			s.Reports = len(ar.Reports)
			s.Timing = ar.Timing
		}
	}
	g.collect(s)
}

// payload builds the request body for the group's seq-th request.
func (g *group) payload(seq int) ([]byte, error) {
	switch g.spec.Mutate {
	case "", "none":
		return g.marshal(g.base.Units)
	case "edit":
		units := make([]minic.NamedSource, len(g.base.Units))
		copy(units, g.base.Units)
		for i, u := range units {
			if strings.Contains(u.Src, "\nvoid drive_") || strings.HasPrefix(u.Src, "void drive_") {
				units[i] = editUnit(u, seq)
				break
			}
		}
		return g.marshal(units)
	case "fresh":
		// Pre-generate a small pool of distinct programs and rotate:
		// every transition between pool members invalidates most of the
		// session, so each request pays a near-cold rebuild without the
		// client regenerating per request.
		g.freshOnce.Do(func() {
			const pool = 4
			g.fresh = make([]json.RawMessage, pool)
			for i := 0; i < pool; i++ {
				gen := g.gen
				gen.Seed = gen.Seed + int64(i)*1_000_003 + 17
				v := workload.Generate(g.subject, gen)
				b, err := g.marshal(v.Units)
				if err != nil {
					b = nil
				}
				g.fresh[i] = b
			}
		})
		b := g.fresh[seq%len(g.fresh)]
		if b == nil {
			return nil, fmt.Errorf("loadgen: fresh pool generation failed")
		}
		return b, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown mutate mode %q", g.spec.Mutate)
	}
}

func (g *group) marshal(units []minic.NamedSource) ([]byte, error) {
	req := server.AnalyzeRequest{
		Project:  g.spec.Project,
		Checkers: g.spec.Checkers,
		Witness:  g.spec.Witness,
	}
	req.Units = make([]server.UnitJSON, len(units))
	for i, u := range units {
		req.Units[i] = server.UnitJSON{Name: u.Name, Src: u.Src}
	}
	return json.Marshal(&req)
}

// achievedRate is the successful-request throughput of a result in
// requests/second.
func achievedRate(r *Result) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	ok := 0
	for i := range r.Samples {
		if r.Samples[i].OK() {
			ok++
		}
	}
	return float64(ok) / r.Elapsed.Seconds()
}

// isFinite guards summary math against degenerate runs.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
