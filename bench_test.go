// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Run them with:
//
//	go test -bench=. -benchmem                 # default small scale
//	go test -bench=Fig7 -benchtime=1x          # one full harness pass
//
// Each benchmark reports custom metrics next to the standard ns/op —
// reports, FP counts, graph sizes — so a bench run doubles as a compact
// experiment log. The authoritative experiment output comes from
// cmd/experiments (see EXPERIMENTS.md); these benchmarks exist so `go test
// -bench` exercises every experiment path and provides per-iteration
// timing.
package main

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/workload"
)

// benchScale keeps bench iterations affordable; cmd/experiments uses the
// full default scale.
const benchScale = 6

func subjectsUpTo(maxKLoC int) []workload.Subject {
	var out []workload.Subject
	for _, s := range workload.Subjects {
		if s.PaperKLoC <= maxKLoC {
			out = append(out, s)
		}
	}
	return out
}

// BenchmarkFig7SEGBuild measures Pinpoint's SEG construction on a mid-size
// subject (the per-subject series of Figure 7, Pinpoint side).
func BenchmarkFig7SEGBuild(b *testing.B) {
	s, _ := workload.SubjectByName("libicu")
	gen := workload.Generate(s, workload.GenOptions{Scale: benchScale})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(a.Sizes.SEGNodes), "segnodes")
	}
}

// BenchmarkFig7FSVFGBuild measures the layered baseline's construction on
// the same subject (Figure 7, SVF side).
func BenchmarkFig7FSVFGBuild(b *testing.B) {
	run := func(b *testing.B, name string) {
		s, _ := workload.SubjectByName(name)
		cfg := bench.Config{Scale: benchScale}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := bench.RunSubject(s, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.SVFEdges), "fsvfgedges")
			if r.SVFTimedOut {
				b.ReportMetric(1, "timeout")
			}
		}
	}
	b.Run("libicu", func(b *testing.B) { run(b, "libicu") })
}

// BenchmarkFig8Memory measures build memory (Figure 8) via the harness.
func BenchmarkFig8Memory(b *testing.B) {
	s, _ := workload.SubjectByName("transmission")
	cfg := bench.Config{Scale: benchScale}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunSubject(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.MB(r.SEGMem.AllocBytes), "seg-MB")
		b.ReportMetric(bench.MB(r.SVFBuildMem.AllocBytes), "fsvfg-MB")
	}
}

// BenchmarkFig9CheckerMemory measures end-to-end checker memory (Figure 9).
func BenchmarkFig9CheckerMemory(b *testing.B) {
	s, _ := workload.SubjectByName("shadowsocks")
	cfg := bench.Config{Scale: benchScale}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunSubject(s, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.MB(r.SEGMem.AllocBytes+r.CheckMem.AllocBytes), "pinpoint-MB")
	}
}

// BenchmarkFig10Scalability runs the size sweep and reports the linear-fit
// R² (Figure 10).
func BenchmarkFig10Scalability(b *testing.B) {
	cfg := bench.Config{Scale: benchScale, Subjects: subjectsUpTo(967)}
	for i := 0; i < b.N; i++ {
		runs, err := bench.RunAllSubjects(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var xs, ts []float64
		for _, r := range runs {
			xs = append(xs, float64(r.Lines))
			ts = append(ts, (r.SEGTime + r.CheckTime).Seconds())
		}
		fit := bench.FitLinear(xs, ts)
		b.ReportMetric(fit.R2, "r2")
	}
}

// BenchmarkTable1UAF runs the Table 1 comparison on the subjects up to
// mid-size and reports totals.
func BenchmarkTable1UAF(b *testing.B) {
	cfg := bench.Config{Scale: benchScale, Subjects: subjectsUpTo(100)}
	for i := 0; i < b.N; i++ {
		runs, err := bench.RunAllSubjects(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, fp, svf := 0, 0, 0
		for _, r := range runs {
			rep += r.Reports
			fp += r.FP
			svf += r.SVFReports
		}
		b.ReportMetric(float64(rep), "reports")
		b.ReportMetric(float64(fp), "fp")
		b.ReportMetric(float64(svf), "svf-reports")
	}
}

// BenchmarkTable2Taint runs the taint checkers on mysql (Table 2).
func BenchmarkTable2Taint(b *testing.B) {
	cfg := bench.Config{Scale: benchScale}
	for i := 0; i < b.N; i++ {
		taint, err := bench.RunTaint(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, tr := range taint {
			b.ReportMetric(float64(tr.Reports), tr.Checker+"-reports")
		}
	}
}

// BenchmarkTable3Baselines runs the Infer-like and CSA-like baselines
// (Table 3).
func BenchmarkTable3Baselines(b *testing.B) {
	cfg := bench.Config{Scale: benchScale}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunUnitConfinedBaselines(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fp := 0
		for _, r := range rows {
			fp += r.FP
		}
		b.ReportMetric(float64(fp), "fp")
	}
}

// BenchmarkJulietRecall runs the 1421-case recall suite (§5.1.2).
func BenchmarkJulietRecall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunJuliet()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Detected), "detected")
		b.ReportMetric(float64(r.Total), "cases")
	}
}

// BenchmarkAblationLinearSolver isolates §3.1.1's linear-time filter.
func BenchmarkAblationLinearSolver(b *testing.B) {
	s, _ := workload.SubjectByName("mysql")
	gen := workload.Generate(s, workload.GenOptions{Scale: benchScale})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(a.PTAStats.LinearUnsat), "pruned")
		}
	})
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := core.BuildFromSource(gen.Units, core.BuildOptions{
				PTA: pta1(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(a.PTAStats.GuardsKept), "kept")
		}
	})
}

// BenchmarkAblationConnectors isolates §3.1.2's connector model.
func BenchmarkAblationConnectors(b *testing.B) {
	s, _ := workload.SubjectByName("mysql")
	gen := workload.Generate(s, workload.GenOptions{Scale: benchScale})
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := core.BuildFromSource(gen.Units, core.BuildOptions{DisableConnectors: mode.disable})
				if err != nil {
					b.Fatal(err)
				}
				reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{})
				b.ReportMetric(float64(len(reports)), "reports")
			}
		})
	}
}

// BenchmarkAblationPathSensitivity isolates the SMT stage.
func BenchmarkAblationPathSensitivity(b *testing.B) {
	s, _ := workload.SubjectByName("mysql")
	gen := workload.Generate(s, workload.GenOptions{Scale: benchScale})
	a, err := core.BuildFromSource(gen.Units, core.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reports, _ := a.Check(checkers.UseAfterFree(), detect.Options{DisablePathSensitivity: mode.disable})
				b.ReportMetric(float64(len(reports)), "reports")
			}
		})
	}
}

// BenchmarkSMTSolver measures the solver core on the kind of mixed
// boolean/arithmetic queries path conditions produce.
func BenchmarkSMTSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSMTWorkload(b)
	}
}

// BenchmarkDepthSweep exercises the calling-context depth knob (the paper
// fixes it at six nested levels).
func BenchmarkDepthSweep(b *testing.B) {
	cfg := bench.Config{Scale: benchScale}
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunDepthSweep(cfg, []int{1, 3, 6})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].TP), "tp-at-depth6")
	}
}
